"""Hetero axis: capacity-aware vs capacity-blind on skewed clusters.

The paper evaluates on a homogeneous cluster; this section adds the
heterogeneous axis (DESIGN.md §13).  For each scenario — ``uniform``,
``skewed-compute`` (one worker at quarter speed), ``skewed-net`` (one
worker behind a quarter-bandwidth NIC) — it compares, per baseline and
algorithm, the simulated runtime on the skewed cluster of:

* ``initial`` — the unrefined baseline partition;
* ``blind``   — refined by ParE2H/ParV2H *without* the cluster spec
  (capacity-blind: the refiner balances raw cost, then the skewed
  cluster executes the result);
* ``aware``   — refined *with* the spec (capacity-aware: balance
  targets become capacity shares, MAssign charges normalized load).

The headline claim: ``aware`` beats ``blind`` on the skewed scenarios
and ties it exactly on ``uniform`` (the uniform spec is bit-identical
to no spec, so blind and aware refinements are the same cell).

All three executions charge the scenario spec, so the comparison
isolates the *refinement* policy, not the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.datasets import load_dataset
from repro.eval.engine import get_engine
from repro.eval.harness import (
    BASELINES,
    algorithm_params,
    initial_partition,
    refine_for,
)
from repro.runtime.clusterspec import ClusterSpec

#: evaluation scenarios, in table order
SCENARIOS = ("uniform", "skewed-compute", "skewed-net")

#: capacity of the degraded worker relative to its peers
SKEW_FACTOR = 0.25

HEADERS = ["scenario", "baseline", "app", "initial (ms)", "blind (ms)", "aware (ms)", "X"]


def scenario_spec(name: str, num_workers: int) -> ClusterSpec:
    """The :class:`ClusterSpec` of one named scenario.

    ``uniform`` returns the explicit all-ones spec (collapsed to the
    legacy no-spec path downstream), so the hetero section is pinned to
    its own scenarios even when ``run_all --cluster-spec`` installed a
    different process-wide default.
    """
    ones = (1.0,) * num_workers
    skewed = (SKEW_FACTOR,) + (1.0,) * (num_workers - 1)
    if name == "uniform":
        return ClusterSpec.uniform(num_workers)
    if name == "skewed-compute":
        return ClusterSpec(speeds=skewed, bandwidths=ones)
    if name == "skewed-net":
        return ClusterSpec(speeds=ones, bandwidths=skewed)
    raise KeyError(f"unknown hetero scenario {name!r}; known: {SCENARIOS}")


def _run_params(algorithm: str, dataset: str, spec: ClusterSpec) -> Dict:
    return {**algorithm_params(algorithm, dataset), "cluster_spec": spec.to_dict()}


def plan_hetero(
    planner,
    dataset: str = "twitter_like",
    num_fragments: int = 4,
    baselines: Sequence[str] = ("xtrapulp", "ne"),
    algorithms: Sequence[str] = ("pr", "wcc", "sssp"),
    scenarios: Sequence[str] = SCENARIOS,
) -> None:
    """Plan every cell :func:`hetero_table` will read (same loops)."""
    uniform = ClusterSpec.uniform(num_fragments)
    for scenario in scenarios:
        spec = scenario_spec(scenario, num_fragments)
        for baseline in baselines:
            cut_type, _label = BASELINES[baseline]
            part = planner.partition(dataset, baseline, num_fragments)
            for algorithm in algorithms:
                params = _run_params(algorithm, dataset, spec)
                planner.run(dataset, algorithm, part, params)
                blind = planner.refine(
                    dataset,
                    baseline,
                    num_fragments,
                    algorithm,
                    cut_type,
                    cluster_spec=uniform.to_dict(),
                )
                planner.run(dataset, algorithm, blind, params)
                aware = planner.refine(
                    dataset,
                    baseline,
                    num_fragments,
                    algorithm,
                    cut_type,
                    cluster_spec=spec.to_dict(),
                )
                planner.run(dataset, algorithm, aware, params)


def hetero_table(
    dataset: str = "twitter_like",
    num_fragments: int = 4,
    baselines: Sequence[str] = ("xtrapulp", "ne"),
    algorithms: Sequence[str] = ("pr", "wcc", "sssp"),
    scenarios: Sequence[str] = SCENARIOS,
) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """Hetero table data.

    Returns ``{scenario: {baseline: {algorithm: {"initial": s,
    "blind": s, "aware": s}}}}`` — simulated seconds on the scenario's
    cluster under each refinement policy.
    """
    graph = load_dataset(dataset)
    uniform = ClusterSpec.uniform(num_fragments)
    out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for scenario in scenarios:
        spec = scenario_spec(scenario, num_fragments)
        per_baseline: Dict[str, Dict[str, Dict[str, float]]] = {}
        for baseline in baselines:
            cut_type, _label = BASELINES[baseline]
            initial, _seconds = initial_partition(graph, baseline, num_fragments)
            rows: Dict[str, Dict[str, float]] = {}
            for algorithm in algorithms:
                params = _run_params(algorithm, dataset, spec)
                blind, _p = refine_for(
                    initial,
                    algorithm,
                    cut_type,
                    cluster_spec=uniform.to_dict(),
                )
                aware, _p = refine_for(
                    initial,
                    algorithm,
                    cut_type,
                    cluster_spec=spec.to_dict(),
                )
                engine = get_engine()
                rows[algorithm] = {
                    "initial": engine.run_algorithm(initial, algorithm, params),
                    "blind": engine.run_algorithm(blind, algorithm, params),
                    "aware": engine.run_algorithm(aware, algorithm, params),
                }
            per_baseline[baseline] = rows
        out[scenario] = per_baseline
    return out


def rows(data: Dict[str, Dict[str, Dict[str, Dict[str, float]]]]) -> List[List]:
    """Flatten :func:`hetero_table` output into printable rows."""
    out: List[List] = []
    for scenario, per_baseline in data.items():
        for baseline, per_algorithm in per_baseline.items():
            for algorithm, cell in per_algorithm.items():
                gain = cell["blind"] / cell["aware"] if cell["aware"] else 0.0
                out.append(
                    [
                        scenario,
                        baseline,
                        algorithm.upper(),
                        round(cell["initial"] * 1e3, 3),
                        round(cell["blind"] * 1e3, 3),
                        round(cell["aware"] * 1e3, 3),
                        round(gain, 2),
                    ]
                )
    return out


def capacity_gains(
    data: Dict[str, Dict[str, Dict[str, Dict[str, float]]]]
) -> Dict[str, float]:
    """Best blind/aware speedup per scenario (the headline numbers)."""
    out: Dict[str, float] = {}
    for scenario, per_baseline in data.items():
        best = 0.0
        for per_algorithm in per_baseline.values():
            for cell in per_algorithm.values():
                if cell["aware"]:
                    best = max(best, cell["blind"] / cell["aware"])
        out[scenario] = best
    return out
