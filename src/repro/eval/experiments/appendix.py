"""Appendix experiment: phase decomposition of ParE2H / ParV2H (Fig. 11).

ParE2H_k (resp. ParV2H_k) runs only the first k phases; the speedup gain
of phase k is read off the difference between ParE2H_{k-1} and
ParE2H_k.  The paper finds EMigrate/VMigrate dominating (67-97% of the
speedup), ESplit mattering most for CN/TC, and MAssign contributing a
consistent single-to-low-double-digit share.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.datasets import load_dataset
from repro.eval.harness import (
    algorithm_params,
    initial_partition,
    refine_for,
    run_algorithm,
)

E2H_FLAGS = ("enable_emigrate", "enable_esplit", "enable_massign")
V2H_FLAGS = ("enable_vmigrate", "enable_vmerge", "enable_massign")


def _cut_and_flags(baseline: str):
    cut = "edge" if baseline in ("xtrapulp", "fennel", "hash") else "vertex"
    return cut, (E2H_FLAGS if cut == "edge" else V2H_FLAGS)


def plan_phase_speedups(
    planner,
    dataset: str = "twitter_like",
    baseline: str = "xtrapulp",
    algorithms: Sequence[str] = ("cn", "tc", "wcc", "pr", "sssp"),
    num_fragments: int = 8,
) -> None:
    """Plan every cell :func:`phase_speedups` will read (same loops)."""
    cut, flags = _cut_and_flags(baseline)
    part = planner.partition(dataset, baseline, num_fragments)
    for algorithm in algorithms:
        params = algorithm_params(algorithm, dataset)
        planner.run(dataset, algorithm, part, params)
        for k in range(1, len(flags) + 1):
            kwargs = {flag: (idx < k) for idx, flag in enumerate(flags)}
            refined = planner.refine(
                dataset, baseline, num_fragments, algorithm, cut, **kwargs
            )
            planner.run(dataset, algorithm, refined, params)


def phase_speedups(
    dataset: str = "twitter_like",
    baseline: str = "xtrapulp",
    algorithms: Sequence[str] = ("cn", "tc", "wcc", "pr", "sssp"),
    num_fragments: int = 8,
) -> Dict[str, List[float]]:
    """Per algorithm: cumulative speedups [S1, S2, S3] of phase prefixes.

    ``S_k`` is the speedup of the k-phase refiner over the unrefined
    baseline; phase k's marginal contribution is ``S_k − S_{k−1}``.
    """
    graph = load_dataset(dataset)
    cut, flags = _cut_and_flags(baseline)
    initial, _seconds = initial_partition(graph, baseline, num_fragments)

    out: Dict[str, List[float]] = {}
    for algorithm in algorithms:
        base_time = run_algorithm(initial, algorithm, dataset)
        speedups: List[float] = []
        for k in range(1, len(flags) + 1):
            kwargs = {flag: (idx < k) for idx, flag in enumerate(flags)}
            refined, _profile = refine_for(initial, algorithm, cut, **kwargs)
            refined_time = run_algorithm(refined, algorithm, dataset)
            speedups.append(base_time / refined_time if refined_time else 0.0)
        out[algorithm] = speedups
    return out


def contribution_rows(data: Dict[str, List[float]]) -> List[List]:
    """Fig. 11 bars: per-phase marginal share of the total speedup gain."""
    rows: List[List] = []
    for algorithm, cumulative in data.items():
        total_gain = cumulative[-1] - 1.0
        previous = 1.0
        shares = []
        for value in cumulative:
            shares.append(max(0.0, value - previous))
            previous = value
        denom = sum(shares) or 1.0
        rows.append(
            [algorithm.upper()]
            + [round(v, 2) for v in cumulative]
            + [f"{share / denom:.0%}" for share in shares]
            + [round(total_gain, 2)]
        )
    return rows


HEADERS = [
    "alg",
    "S1",
    "S2",
    "S3",
    "phase1 share",
    "phase2 share",
    "phase3 share",
    "total gain",
]
