"""Exp-4: time and space efficiency of the composite partitioners.

Fig. 10(b): one composite ParMHP run versus five separate ParHP runs
(one per algorithm of the batch) — the paper reports ParMHP 19-111%
faster.  Space: the composite representation saves 51-67% versus storing
five hybrid partitions separately, at 15-58% extra space over the single
initial partition.

Times here are the refiners' **simulated BSP times**: both sides expose
per-phase cluster profiles, and the simulated clock is what every other
timing comparison in this reproduction uses.  (Wall-clock would compare
Python object-assembly overhead instead — the composite refiner builds
all five partitions from scratch, which a storage-sharing deployment
would not physically duplicate.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.eval.datasets import load_dataset
from repro.eval.harness import (
    BASELINES,
    BATCH,
    composite_refine,
    initial_partition,
    partition_and_refine,
)


def plan_figure10b(
    planner,
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    batch: Tuple[str, ...] = BATCH,
) -> None:
    """Plan every cell :func:`figure10b` will read (same loops)."""
    for baseline in baselines:
        cut_type, _label = BASELINES[baseline]
        planner.partition(dataset, baseline, num_fragments)
        for algorithm in batch:
            planner.refine(dataset, baseline, num_fragments, algorithm, cut_type)
        planner.composite(dataset, baseline, num_fragments, batch, cut_type)


def figure10b(
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    batch: Tuple[str, ...] = BATCH,
) -> Dict[str, Dict[str, float]]:
    """Per baseline: separate vs composite partitioning time and space.

    Returns ``{baseline: {parhp_s, parmhp_s, time_saving, initial_ratio,
    separate_ratio, composite_ratio, space_saving, extra_over_initial}}``.
    """
    graph = load_dataset(dataset)
    out: Dict[str, Dict[str, float]] = {}
    graph_size = graph.num_vertices + graph.num_edges
    for baseline in baselines:
        # Five separate application-driven refinements (ParHP).
        parhp_seconds = 0.0
        for algorithm in batch:
            bundle = partition_and_refine(
                graph, baseline, algorithm, num_fragments, dataset
            )
            parhp_seconds += bundle.refine_profile.total_time

        # One composite refinement (ParMHP).
        composite, profile, base_seconds = composite_refine(
            graph, baseline, num_fragments, batch
        )
        # Storage of the single static initial partition, for the
        # "extra space over initial" comparison.
        initial, _seconds = initial_partition(graph, baseline, num_fragments)
        initial_ratio = (
            initial.total_vertex_copies() + initial.total_edge_copies()
        ) / graph_size

        separate = composite.separate_storage_ratio()
        comp_ratio = composite.composite_replication_ratio()
        out[baseline] = {
            "parhp_s": parhp_seconds,
            "parmhp_s": profile.total_time,
            "time_saving": (parhp_seconds - profile.total_time)
            / max(parhp_seconds, 1e-12),
            "initial_ratio": initial_ratio,
            "separate_ratio": separate,
            "composite_ratio": comp_ratio,
            "space_saving": composite.space_saving(),
            "extra_over_initial": (comp_ratio - initial_ratio)
            / max(initial_ratio, 1e-12),
        }
    return out


def rows(data: Dict[str, Dict[str, float]]) -> List[List]:
    """Flatten the Fig. 10(b) data into printable rows."""
    out: List[List] = []
    for baseline, cell in data.items():
        out.append(
            [
                baseline,
                round(cell["parhp_s"], 3),
                round(cell["parmhp_s"], 3),
                f"{cell['time_saving']:.0%}",
                round(cell["separate_ratio"], 2),
                round(cell["composite_ratio"], 2),
                f"{cell['space_saving']:.0%}",
                f"{cell['extra_over_initial']:.0%}",
            ]
        )
    return out


HEADERS = [
    "baseline",
    "5x ParHP (s)",
    "ParMHP (s)",
    "time saved",
    "separate f",
    "composite f_c",
    "space saved",
    "extra vs initial",
]
