"""Exp-5: scalability of the refiners in |G| (Fig. 9(l)).

Fixes n and grows the synthetic graph from 1× to 5×; reports the
refinement time of ParE2H/ParV2H (and optionally the composite variants)
for the CN cost model.  The paper's shape: near-linear growth, with the
worst-balanced input (Fennel) costing the most to refine because more
edges must move.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.eval.datasets import load_dataset
from repro.eval.harness import (
    BASELINES,
    BATCH,
    composite_refine,
    partition_and_refine,
)


def plan_figure9l(
    planner,
    algorithm: str = "cn",
    factors: Sequence[int] = (1, 2, 3, 4, 5),
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    composite: bool = False,
) -> None:
    """Plan the refine/composite cells :func:`figure9l` will read."""
    for factor in factors:
        dataset = f"scale_{factor}"
        for baseline in baselines:
            cut_type, _label = BASELINES[baseline]
            planner.partition(dataset, baseline, num_fragments)
            if composite:
                planner.composite(dataset, baseline, num_fragments, BATCH, cut_type)
            else:
                planner.refine(dataset, baseline, num_fragments, algorithm, cut_type)


def figure9l(
    algorithm: str = "cn",
    factors: Sequence[int] = (1, 2, 3, 4, 5),
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    composite: bool = False,
) -> Dict[str, List[Tuple[int, float]]]:
    """Per refined baseline: ``[(scale factor, refine wall seconds)]``.

    With ``composite=True`` the ParME2H/ParMV2H times for the full batch
    are measured instead (the Exp-5 finding (2) series).
    """
    out: Dict[str, List[Tuple[int, float]]] = {}
    for factor in factors:
        graph = load_dataset(f"scale_{factor}")
        for baseline in baselines:
            label = BASELINES[baseline][1] or baseline
            if composite:
                _comp, profile, _s = composite_refine(
                    graph, baseline, num_fragments, BATCH
                )
                seconds = profile.wall_seconds
                label = "Par M" + label[1:] if label.startswith("H") else label
            else:
                bundle = partition_and_refine(
                    graph, baseline, algorithm, num_fragments, f"scale_{factor}"
                )
                seconds = bundle.refine_profile.wall_seconds
            out.setdefault(label, []).append((factor, seconds))
    return out


def rows(data: Dict[str, List[Tuple[int, float]]]) -> List[List]:
    """Fig. 9(l) series as one row per graph size."""
    factors = sorted({f for pts in data.values() for f, _s in pts})
    table: List[List] = []
    for factor in factors:
        row: List = [f"{factor}|G|"]
        for label in data:
            lookup = dict(data[label])
            row.append(round(lookup.get(factor, float("nan")), 3))
        table.append(row)
    return table


def headers(data: Dict[str, List[Tuple[int, float]]]) -> List[str]:
    """Column names matching :func:`rows`."""
    return ["size"] + [f"{label} (s)" for label in data]
