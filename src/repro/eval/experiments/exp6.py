"""Exp-6: cost-model learning accuracy and efficiency (Table 5).

Trains the computational and communication cost functions of the five
algorithms from instrumented runs over the mixed training roster
(Section 4), and reports the learned polynomial, its test MSRE and the
training time — the Table 5 columns.  Also times the single-machine
reference implementations, standing in for the paper's Gunrock remark
(no-partitioning comparison point).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.algorithms import reference
from repro.costmodel.collection import collect_training_data, default_training_graphs
from repro.costmodel.trained import (
    G_VARIABLES,
    H_DEGREE,
    H_VARIABLES,
    TRAIN_PARAMS,
)
from repro.costmodel.training import TrainingReport, fit_cost_function


@dataclass
class Table5Row:
    """One learned cost model row of Table 5."""

    algorithm: str
    h_report: TrainingReport
    g_report: Optional[TrainingReport]

    def as_row(self) -> List:
        """Printable Table 5 row."""
        g_func = str(self.g_report.function) if self.g_report else "-"
        g_msre = round(self.g_report.test_msre, 3) if self.g_report else "-"
        g_time = round(self.g_report.training_time, 2) if self.g_report else "-"
        return [
            self.algorithm.upper(),
            str(self.h_report.function),
            round(self.h_report.test_msre, 3),
            round(self.h_report.training_time, 2),
            g_func,
            g_msre,
            g_time,
        ]


HEADERS = [
    "alg",
    "h_A",
    "h MSRE",
    "h train (s)",
    "g_A",
    "g MSRE",
    "g train (s)",
]


def table5(
    algorithms: Sequence[str] = ("cn", "tc", "wcc", "pr", "sssp"),
    num_graphs: int = 6,
    scale: int = 1,
    degree: int = 2,
    seed: int = 0,
) -> List[Table5Row]:
    """Train all cost models and return the Table 5 rows."""
    graphs = default_training_graphs(seed=seed, scale=scale)[:num_graphs]
    rows: List[Table5Row] = []
    for algorithm in algorithms:
        params = TRAIN_PARAMS.get(algorithm)
        comp, comm = collect_training_data(
            algorithm, graphs, num_fragments=4, seed=seed, algorithm_params=params
        )
        h_report = fit_cost_function(
            comp, H_VARIABLES[algorithm], degree=H_DEGREE[algorithm],
            name=f"h_{algorithm}", seed=seed,
        )
        g_report = None
        if comm:
            g_report = fit_cost_function(
                comm, G_VARIABLES[algorithm], degree=degree,
                name=f"g_{algorithm}", seed=seed,
            )
        rows.append(Table5Row(algorithm, h_report, g_report))
    return rows


def gunrock_substitute_times(dataset_graph) -> Dict[str, float]:
    """Single-machine reference timings (the Gunrock comparison point)."""
    timings: Dict[str, float] = {}
    jobs = {
        "tc": lambda: reference.reference_triangle_count(dataset_graph),
        "wcc": lambda: reference.reference_wcc(dataset_graph),
        "sssp": lambda: reference.reference_sssp(dataset_graph, 0),
        "pr": lambda: reference.reference_pagerank(dataset_graph, iterations=10),
    }
    for name, job in jobs.items():
        start = time.perf_counter()
        job()
        timings[name] = time.perf_counter() - start
    return timings


# ----------------------------------------------------------------------
# Engine integration.  Table 5 training and the reference timings are
# memo cells: plain JSON in, plain JSON out, addressed by name so worker
# processes can execute them and later sweeps replay the artifact
# (including the measured training/wall seconds).
# ----------------------------------------------------------------------
def _table5_params(
    algorithms: Sequence[str] = ("cn", "tc", "wcc", "pr", "sssp"),
    num_graphs: int = 6,
    scale: int = 1,
    degree: int = 2,
    seed: int = 0,
) -> Dict:
    return {
        "algorithms": list(algorithms),
        "num_graphs": num_graphs,
        "scale": scale,
        "degree": degree,
        "seed": seed,
    }


def table5_payload(
    algorithms: Sequence[str] = ("cn", "tc", "wcc", "pr", "sssp"),
    num_graphs: int = 6,
    scale: int = 1,
    degree: int = 2,
    seed: int = 0,
) -> Dict:
    """Memo-cell body: Table 5 as JSON-serializable printable rows."""
    rows = table5(
        algorithms=tuple(algorithms),
        num_graphs=num_graphs,
        scale=scale,
        degree=degree,
        seed=seed,
    )
    return {"rows": [row.as_row() for row in rows]}


def table5_rows(**kwargs) -> List[List]:
    """Printable Table 5 rows via the active engine (memoized)."""
    from repro.eval.engine import get_engine

    return get_engine().memo("exp6_table5", _table5_params(**kwargs))["rows"]


def reference_times_payload(dataset: str) -> Dict:
    """Memo-cell body: single-machine reference timings for ``dataset``."""
    from repro.eval.datasets import load_dataset

    return {"times": gunrock_substitute_times(load_dataset(dataset))}


def reference_times(dataset: str) -> Dict[str, float]:
    """Reference timings via the active engine (memoized)."""
    from repro.eval.engine import get_engine

    return get_engine().memo("exp6_reference_times", {"dataset": dataset})["times"]


def plan_table5(planner, **kwargs) -> None:
    """Plan the Table 5 training memo cell."""
    planner.memo("exp6_table5", _table5_params(**kwargs))


def plan_reference_times(planner, dataset: str) -> None:
    """Plan the reference-timing memo cell."""
    planner.memo("exp6_reference_times", {"dataset": dataset})
