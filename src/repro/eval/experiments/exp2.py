"""Exp-2: effectiveness of the composite partitioners (Table 4, Fig. 10(a)).

Fixes the batch {CN, TC, WCC, PR, SSSP} and compares, per baseline:

* running each algorithm on the **initial** static partition;
* on partitions refined **per algorithm** by ParE2H/ParV2H (``ParHP``);
* on the **composite** partition of ParME2H/ParMV2H (``ParMHP``).

The paper's shape: ParMHP's per-algorithm times are within single-digit
percent of ParHP's (≤ 8.2%), and both beat the initial partitions —
including the Ginger/TopoX hybrids.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.eval.datasets import load_dataset
from repro.eval.harness import (
    BASELINES,
    BATCH,
    algorithm_params,
    composite_refine,
    initial_partition,
    partition_and_refine,
    run_algorithm,
)


def plan_table4(
    planner,
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    batch: Tuple[str, ...] = BATCH,
) -> None:
    """Plan every cell :func:`table4` will read (same loops)."""
    for baseline in baselines:
        cut_type, _label = BASELINES[baseline]
        part = planner.partition(dataset, baseline, num_fragments)
        composite = planner.composite(
            dataset, baseline, num_fragments, batch, cut_type
        )
        for algorithm in batch:
            params = algorithm_params(algorithm, dataset)
            planner.run(dataset, algorithm, part, params)
            refined = planner.refine(
                dataset, baseline, num_fragments, algorithm, cut_type
            )
            planner.run(dataset, algorithm, refined, params)
            planner.run(dataset, algorithm, composite, params, view=algorithm)


def table4(
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
    batch: Tuple[str, ...] = BATCH,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table 4 data: per baseline, per algorithm, seconds under each scheme.

    Returns ``{baseline: {algorithm: {"initial": s, "parhp": s,
    "parmhp": s}}}`` plus a ``"batch"`` pseudo-algorithm with totals.
    """
    graph = load_dataset(dataset)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for baseline in baselines:
        rows: Dict[str, Dict[str, float]] = {}
        composite, _profile, _base_s = composite_refine(
            graph, baseline, num_fragments, batch
        )
        initial, _seconds = initial_partition(graph, baseline, num_fragments)
        for algorithm in batch:
            bundle = partition_and_refine(
                graph, baseline, algorithm, num_fragments, dataset
            )
            rows[algorithm] = {
                "initial": run_algorithm(initial, algorithm, dataset),
                "parhp": run_algorithm(bundle.refined, algorithm, dataset),
                "parmhp": run_algorithm(
                    composite.partition_for(algorithm), algorithm, dataset
                ),
            }
        rows["batch"] = {
            scheme: sum(rows[a][scheme] for a in batch)
            for scheme in ("initial", "parhp", "parmhp")
        }
        out[baseline] = rows
    return out


def table4_rows(data: Dict[str, Dict[str, Dict[str, float]]]) -> List[List]:
    """Flatten :func:`table4` output into printable rows."""
    rows: List[List] = []
    baselines = list(data)
    algorithms = [a for a in next(iter(data.values())) if a != "batch"] + ["batch"]
    for algorithm in algorithms:
        row: List = [algorithm.upper()]
        for baseline in baselines:
            cell = data[baseline][algorithm]
            speedup = cell["initial"] / cell["parmhp"] if cell["parmhp"] else 0.0
            row.extend(
                [
                    round(cell["parmhp"] * 1e3, 2),
                    round(cell["initial"] * 1e3, 2),
                    round(speedup, 1),
                ]
            )
        rows.append(row)
    return rows


def table4_headers(baselines: Sequence[str]) -> List[str]:
    """Column names for the flattened Table 4."""
    headers = ["app"]
    for baseline in baselines:
        headers.extend([f"M{baseline} (ms)", f"{baseline} (ms)", "X"])
    return headers


def composite_overhead(
    data: Dict[str, Dict[str, Dict[str, float]]]
) -> Dict[str, float]:
    """Fig. 10(a) claim: batch-time overhead of ParMHP over ParHP."""
    out: Dict[str, float] = {}
    for baseline, rows in data.items():
        parhp = rows["batch"]["parhp"]
        parmhp = rows["batch"]["parmhp"]
        out[baseline] = (parmhp - parhp) / parhp if parhp else 0.0
    return out
