"""Exp-1: effectiveness of application-driven partitioners.

Regenerates the Fig. 9(a-j) series — execution time of CN, TC, WCC, PR
and SSSP while varying the fragment count n, under each baseline and its
application-driven refinement — and Table 3's partition quality metrics.

The paper's headline shape: refined partitions (H-prefixed) beat their
baselines for every algorithm; gains are largest for CN/TC over edge-cuts
(workload skew), moderate for WCC/PR, small for SSSP.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.tracker import CostTracker
from repro.costmodel.trained import trained_cost_model
from repro.eval.datasets import load_dataset
from repro.eval.harness import (
    BASELINES,
    algorithm_params,
    partition_and_refine,
    run_algorithm,
)
from repro.partition.quality import (
    cost_balance_factor,
    edge_balance_factor,
    edge_replication_ratio,
    vertex_balance_factor,
    vertex_replication_ratio,
)

Series = Dict[str, List[Tuple[int, float]]]


def plan_figure9(
    planner,
    algorithm: str,
    dataset: str,
    fragment_counts: Sequence[int] = (2, 4, 8),
    baselines: Iterable[str] = BASELINES,
) -> None:
    """Plan every cell :func:`figure9_series` will read (same loops)."""
    params = algorithm_params(algorithm, dataset)
    for baseline in baselines:
        cut_type, _refined_label = BASELINES[baseline]
        for n in fragment_counts:
            part = planner.partition(dataset, baseline, n)
            planner.run(dataset, algorithm, part, params)
            if cut_type in ("edge", "vertex"):
                refined = planner.refine(dataset, baseline, n, algorithm, cut_type)
                planner.run(dataset, algorithm, refined, params)


def plan_table3(
    planner,
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    cost_algorithm: str = "cn",
) -> None:
    """Plan the partition/refine cells :func:`table3_rows` will read."""
    for baseline, (cut_type, _label) in BASELINES.items():
        planner.partition(dataset, baseline, num_fragments)
        if cut_type in ("edge", "vertex"):
            planner.refine(dataset, baseline, num_fragments, cost_algorithm, cut_type)


def figure9_series(
    algorithm: str,
    dataset: str,
    fragment_counts: Sequence[int] = (2, 4, 8),
    baselines: Iterable[str] = BASELINES,
) -> Series:
    """One Fig. 9 panel: {partitioner label: [(n, seconds), ...]}.

    Labels follow the paper: a baseline name for the initial partition
    and its H-variant (HFennel, HGrid, ...) for the refined one.
    """
    graph = load_dataset(dataset)
    series: Series = {}
    for baseline in baselines:
        cut_type, refined_label = BASELINES[baseline]
        for n in fragment_counts:
            bundle = partition_and_refine(graph, baseline, algorithm, n, dataset)
            base_time = run_algorithm(bundle.initial, algorithm, dataset)
            series.setdefault(baseline, []).append((n, base_time))
            if bundle.refined is not None:
                refined_time = run_algorithm(bundle.refined, algorithm, dataset)
                series.setdefault(refined_label, []).append((n, refined_time))
    return series


def speedups(series: Series) -> Dict[str, float]:
    """Average speedup of each refined variant over its baseline."""
    out: Dict[str, float] = {}
    for baseline, (_cut, refined_label) in BASELINES.items():
        if refined_label is None or refined_label not in series:
            continue
        base = dict(series.get(baseline, ()))
        refined = dict(series[refined_label])
        ratios = [base[n] / refined[n] for n in refined if n in base and refined[n] > 0]
        if ratios:
            out[refined_label] = sum(ratios) / len(ratios)
    return out


def table3_rows(
    dataset: str = "twitter_like",
    num_fragments: int = 8,
    cost_algorithm: str = "cn",
) -> List[List]:
    """Table 3: f_v, f_e, λ_e, λ_v, λ_CN for every partitioner ± refinement."""
    graph = load_dataset(dataset)
    model = trained_cost_model(cost_algorithm)

    def metrics(label: str, partition) -> List:
        tracker = CostTracker(partition, model)
        lam_cost = cost_balance_factor(partition, model)
        tracker.detach()
        return [
            label,
            round(vertex_replication_ratio(partition), 2),
            round(edge_replication_ratio(partition), 2),
            round(edge_balance_factor(partition), 2),
            round(vertex_balance_factor(partition), 2),
            round(lam_cost, 2),
        ]

    rows: List[List] = []
    for baseline, (cut_type, refined_label) in BASELINES.items():
        bundle = partition_and_refine(
            graph, baseline, cost_algorithm, num_fragments, dataset
        )
        rows.append(metrics(baseline, bundle.initial))
        if bundle.refined is not None:
            rows.append(metrics(refined_label, bundle.refined))
    return rows


def table3_headers() -> List[str]:
    """Column names for Table 3."""
    return ["partitioner", "f_v", "f_e", "lambda_e", "lambda_v", "lambda_CN"]
