"""Exp-3: efficiency of ParE2H / ParV2H (Fig. 9(k)).

Measures the time the refiners add on top of the baseline partitioner —
the paper reports ParE2H at 11.5% and ParV2H at 11.1% of total
partitioning time on average, shrinking as n grows (fewer adjustments
needed per fragment at larger n... more precisely: with smaller n more
adjustment operations are needed, finding (2) of Exp-3).

Times here are wall-clock seconds of the local simulation — both the
baseline partitioner and the refiner run in the same process, so their
ratio is meaningful even though absolute values are not comparable to the
paper's cluster.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.eval.datasets import load_dataset
from repro.eval.harness import BASELINES, partition_and_refine


def plan_figure9k(
    planner,
    dataset: str = "twitter_like",
    algorithm: str = "tc",
    fragment_counts: Sequence[int] = (2, 4, 8),
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
) -> None:
    """Plan the partition/refine cells :func:`figure9k` will read."""
    for baseline in baselines:
        cut_type, _label = BASELINES[baseline]
        for n in fragment_counts:
            planner.partition(dataset, baseline, n)
            planner.refine(dataset, baseline, n, algorithm, cut_type)


def figure9k(
    dataset: str = "twitter_like",
    algorithm: str = "tc",
    fragment_counts: Sequence[int] = (2, 4, 8),
    baselines: Sequence[str] = ("xtrapulp", "fennel", "grid", "ne"),
) -> Dict[str, List[Tuple[int, float, float, float]]]:
    """Per baseline: ``[(n, partition s, refine s, refine share)]``."""
    graph = load_dataset(dataset)
    out: Dict[str, List[Tuple[int, float, float, float]]] = {}
    for baseline in baselines:
        points = []
        for n in fragment_counts:
            bundle = partition_and_refine(graph, baseline, algorithm, n, dataset)
            refine_s = bundle.refine_profile.wall_seconds
            total = bundle.partition_seconds + refine_s
            points.append(
                (n, bundle.partition_seconds, refine_s, refine_s / total)
            )
        out[BASELINES[baseline][1] or baseline] = points
    return out


def rows(data: Dict[str, List[Tuple[int, float, float, float]]]) -> List[List]:
    """Flatten the Fig. 9(k) series into printable rows."""
    flattened: List[List] = []
    for label, points in data.items():
        for n, part_s, refine_s, share in points:
            flattened.append(
                [label, n, round(part_s, 3), round(refine_s, 3), f"{share:.1%}"]
            )
    return flattened


HEADERS = ["partitioner", "n", "baseline (s)", "refine (s)", "refine share"]
