"""Table/series rendering shared by the experiment modules and benches.

Everything the experiments emit goes through two primitives: a
fixed-width console table (what the bench output shows) and a markdown
table (what ``run_all`` writes into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width console table."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(lines)


def series_block(title: str, x_label: str, series: dict) -> str:
    """Render figure-style series: {label: [(x, y), ...]} as a table."""
    xs = sorted({x for points in series.values() for x, _y in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for label in series:
            lookup = dict(series[label])
            row.append(lookup.get(x, ""))
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"
