"""Shared experiment plumbing: partition → refine → run → measure.

The harness fixes the roster the paper's tables iterate over:

* edge-cut baselines refined by ParE2H → ``HxtraPuLP``, ``HFennel``;
* vertex-cut baselines refined by ParV2H → ``HGrid``, ``HNE``;
* hybrid baselines ``Ginger`` and ``TopoX`` evaluated as-is (the paper
  does not refine them, Section 7);

and provides the two measurements every experiment needs: the simulated
parallel runtime of an algorithm over a partition, and the wall/simulated
time of a refinement.

Every measurement routes through the active evaluation engine
(:mod:`repro.eval.engine`).  The default engine is a passthrough that
computes in-process exactly as before; ``run_all --cache-dir`` installs
a caching engine so identical (dataset, partitioner, n, model) cells are
computed once, shared across experiments, and replayed from disk on
later runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.parallel import RefinementProfile
from repro.costmodel.model import CostModel
from repro.costmodel.trained import trained_cost_model, trained_cost_models
from repro.eval.datasets import CN_THETA
from repro.eval.engine import get_engine
from repro.graph.digraph import Graph
from repro.partition.composite import CompositePartition
from repro.partition.hybrid import HybridPartition

#: baseline name -> (cut type, refined-variant label)
BASELINES: Dict[str, Tuple[str, Optional[str]]] = {
    "xtrapulp": ("edge", "HxtraPuLP"),
    "fennel": ("edge", "HFennel"),
    "grid": ("vertex", "HGrid"),
    "ne": ("vertex", "HNE"),
    "ginger": ("hybrid", None),
    "topox": ("hybrid", None),
}

#: the paper's fixed mixed workload (Section 7)
BATCH = ("cn", "tc", "wcc", "pr", "sssp")


@dataclass
class PartitionBundle:
    """An initial partition plus its application-driven refinement."""

    dataset: str
    baseline: str
    num_fragments: int
    initial: HybridPartition
    refined: Optional[HybridPartition]
    partition_seconds: float
    refine_profile: Optional[RefinementProfile]


def algorithm_params(algorithm: str, dataset: str) -> Dict:
    """Per-dataset parameters (CN's θ filter, PR's iteration count)."""
    params: Dict = {}
    if algorithm == "cn":
        theta = CN_THETA.get(dataset)
        if theta is not None:
            params["theta"] = theta
    if algorithm == "pr":
        params["iterations"] = 10
    return params


def run_algorithm(
    partition: HybridPartition, algorithm: str, dataset: str = ""
) -> float:
    """Simulated parallel runtime (seconds) of ``algorithm`` on the partition."""
    return get_engine().run_algorithm(
        partition, algorithm, algorithm_params(algorithm, dataset)
    )


def initial_partition(
    graph: Graph, baseline: str, num_fragments: int
) -> Tuple[HybridPartition, float]:
    """Baseline partition and its wall-clock seconds (cache-shared)."""
    return get_engine().initial_partition(graph, baseline, num_fragments)


def refine_for(
    partition: HybridPartition,
    algorithm: str,
    cut_type: str,
    cost_model: Optional[CostModel] = None,
    **refiner_kwargs,
) -> Tuple[HybridPartition, RefinementProfile]:
    """Refine with ParE2H or ParV2H according to the input's cut type."""
    # The paper's pipeline (Section 3.2): first learn the cost model on
    # the system the algorithm runs on, then partition with it.  The
    # harness therefore uses models trained on this repo's BSP simulator
    # (cached across processes), not the Table 5 coefficients, which
    # describe the authors' cluster.
    model = cost_model or trained_cost_model(algorithm)
    return get_engine().refine_partition(
        partition, algorithm, cut_type, model, **refiner_kwargs
    )


def partition_and_refine(
    graph: Graph,
    baseline: str,
    algorithm: str,
    num_fragments: int,
    dataset: str = "",
) -> PartitionBundle:
    """Build the baseline partition and, when applicable, refine it."""
    cut_type, _label = BASELINES[baseline]
    initial, partition_seconds = initial_partition(graph, baseline, num_fragments)
    refined = None
    profile = None
    if cut_type in ("edge", "vertex"):
        refined, profile = refine_for(initial, algorithm, cut_type)
    return PartitionBundle(
        dataset=dataset,
        baseline=baseline,
        num_fragments=num_fragments,
        initial=initial,
        refined=refined,
        partition_seconds=partition_seconds,
        refine_profile=profile,
    )


def composite_refine(
    graph: Graph,
    baseline: str,
    num_fragments: int,
    batch: Tuple[str, ...] = BATCH,
) -> Tuple[CompositePartition, RefinementProfile, float]:
    """ParME2H / ParMV2H over a baseline; returns (composite, profile, base s)."""
    cut_type, _label = BASELINES[baseline]
    models = {name: trained_cost_model(name) for name in batch}
    initial, partition_seconds = initial_partition(graph, baseline, num_fragments)
    composite, profile = get_engine().composite_refine(
        initial, cut_type, batch, models
    )
    return composite, profile, partition_seconds
