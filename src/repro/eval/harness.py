"""Shared experiment plumbing: partition → refine → run → measure.

The harness fixes the roster the paper's tables iterate over:

* edge-cut baselines refined by ParE2H → ``HxtraPuLP``, ``HFennel``;
* vertex-cut baselines refined by ParV2H → ``HGrid``, ``HNE``;
* hybrid baselines ``Ginger`` and ``TopoX`` evaluated as-is (the paper
  does not refine them, Section 7);

and provides the two measurements every experiment needs: the simulated
parallel runtime of an algorithm over a partition, and the wall/simulated
time of a refinement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.algorithms.registry import get_algorithm
from repro.core.parallel import ParE2H, ParMV2H, ParME2H, ParV2H, RefinementProfile
from repro.costmodel.model import CostModel
from repro.costmodel.trained import trained_cost_model, trained_cost_models
from repro.eval.datasets import CN_THETA
from repro.graph.digraph import Graph
from repro.partition.composite import CompositePartition
from repro.partition.hybrid import HybridPartition
from repro.partitioners.base import get_partitioner

#: baseline name -> (cut type, refined-variant label)
BASELINES: Dict[str, Tuple[str, Optional[str]]] = {
    "xtrapulp": ("edge", "HxtraPuLP"),
    "fennel": ("edge", "HFennel"),
    "grid": ("vertex", "HGrid"),
    "ne": ("vertex", "HNE"),
    "ginger": ("hybrid", None),
    "topox": ("hybrid", None),
}

#: the paper's fixed mixed workload (Section 7)
BATCH = ("cn", "tc", "wcc", "pr", "sssp")


@dataclass
class PartitionBundle:
    """An initial partition plus its application-driven refinement."""

    dataset: str
    baseline: str
    num_fragments: int
    initial: HybridPartition
    refined: Optional[HybridPartition]
    partition_seconds: float
    refine_profile: Optional[RefinementProfile]


def algorithm_params(algorithm: str, dataset: str) -> Dict:
    """Per-dataset parameters (CN's θ filter, PR's iteration count)."""
    params: Dict = {}
    if algorithm == "cn":
        theta = CN_THETA.get(dataset)
        if theta is not None:
            params["theta"] = theta
    if algorithm == "pr":
        params["iterations"] = 10
    return params


def run_algorithm(
    partition: HybridPartition, algorithm: str, dataset: str = ""
) -> float:
    """Simulated parallel runtime (seconds) of ``algorithm`` on the partition."""
    result = get_algorithm(algorithm).run(
        partition, **algorithm_params(algorithm, dataset)
    )
    return result.makespan


def refine_for(
    partition: HybridPartition,
    algorithm: str,
    cut_type: str,
    cost_model: Optional[CostModel] = None,
    **refiner_kwargs,
) -> Tuple[HybridPartition, RefinementProfile]:
    """Refine with ParE2H or ParV2H according to the input's cut type."""
    # The paper's pipeline (Section 3.2): first learn the cost model on
    # the system the algorithm runs on, then partition with it.  The
    # harness therefore uses models trained on this repo's BSP simulator
    # (cached across processes), not the Table 5 coefficients, which
    # describe the authors' cluster.
    model = cost_model or trained_cost_model(algorithm)
    if cut_type == "edge":
        refiner = ParE2H(model, **refiner_kwargs)
    elif cut_type == "vertex":
        refiner = ParV2H(model, **refiner_kwargs)
    else:
        raise ValueError(f"cannot refine a {cut_type!r} baseline")
    return refiner.refine(partition)


def partition_and_refine(
    graph: Graph,
    baseline: str,
    algorithm: str,
    num_fragments: int,
    dataset: str = "",
) -> PartitionBundle:
    """Build the baseline partition and, when applicable, refine it."""
    cut_type, _label = BASELINES[baseline]
    start = time.perf_counter()
    initial = get_partitioner(baseline).partition(graph, num_fragments)
    partition_seconds = time.perf_counter() - start
    refined = None
    profile = None
    if cut_type in ("edge", "vertex"):
        refined, profile = refine_for(initial, algorithm, cut_type)
    return PartitionBundle(
        dataset=dataset,
        baseline=baseline,
        num_fragments=num_fragments,
        initial=initial,
        refined=refined,
        partition_seconds=partition_seconds,
        refine_profile=profile,
    )


def composite_refine(
    graph: Graph,
    baseline: str,
    num_fragments: int,
    batch: Tuple[str, ...] = BATCH,
) -> Tuple[CompositePartition, RefinementProfile, float]:
    """ParME2H / ParMV2H over a baseline; returns (composite, profile, base s)."""
    cut_type, _label = BASELINES[baseline]
    models = {name: trained_cost_model(name) for name in batch}
    start = time.perf_counter()
    initial = get_partitioner(baseline).partition(graph, num_fragments)
    partition_seconds = time.perf_counter() - start
    if cut_type == "edge":
        refiner = ParME2H(models)
    elif cut_type == "vertex":
        refiner = ParMV2H(models)
    else:
        raise ValueError(f"cannot composite-refine a {cut_type!r} baseline")
    composite, profile = refiner.refine(initial)
    return composite, profile, partition_seconds
