"""Run every experiment and print paper-style tables.

Usage::

    python -m repro.eval.run_all                 # full sweep (serial)
    python -m repro.eval.run_all --quick         # reduced sweep
    python -m repro.eval.run_all --quick --jobs 4
    python -m repro.eval.run_all --only exp1,exp3
    python -m repro.eval.run_all --no-cache

The sweep runs on the evaluation engine (:mod:`repro.eval.engine`):
every experiment cell — initial partition, refinement, simulated run,
composite refinement, model training — is keyed by a canonical config
digest and stored in a content-addressed cache (``--cache-dir``, default
``.repro-cache/``).  With ``--jobs N`` the independent cells are first
executed on a process pool (the *warm phase*), then the tables are
rendered serially from the cached artifacts — so the stdout tables are
byte-identical to a serial run, and a warm cache replays the whole sweep
(including measured wall-clock columns) without recomputing.

Diagnostics (cache hit/miss counters per experiment, warm-phase summary,
total wall time) go to stderr; stdout carries only the tables.

The warm phase is resilient (:mod:`repro.eval.engine.resilience`):
worker crashes and transient cell errors retry with seeded backoff,
``--job-timeout`` abandons (and hedges) stragglers, corrupt cache
artifacts are quarantined and recomputed, and repeatedly failing jobs
degrade to in-process execution.  A ``[resilience]`` stderr line reports
what happened whenever anything did.  The ``--chaos-*`` flags inject
deterministic failures (worker kills, hangs, artifact corruption) to
exercise those paths; the stdout tables stay byte-identical regardless.
By default only a job's first attempt can be sabotaged;
``--chaos-every-attempt`` exposes retries to chaos too (convergence is
then no longer guaranteed — pair it with low rates).  ``--trace-out``
records every fired chaos fate to a JSONL failure trace;
``--trace-in`` replays a recorded trace exactly, bypassing the rates
(see ``repro trace`` for show/replay/minimize tooling).

The benchmarks under ``benchmarks/`` invoke the same experiment modules
one table/figure at a time; this script is the one-shot reproduction of
the whole evaluation section, and is what EXPERIMENTS.md's measured
numbers come from.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time

from repro.eval.engine import ArtifactCache, EvalEngine, Planner, use_engine
from repro.eval.experiments import appendix, exp1, exp2, exp3, exp4, exp5, exp6, hetero
from repro.eval.reporting import format_table, series_block

#: default on-disk artifact cache, shared with the benchmark scripts
DEFAULT_CACHE_DIR = ".repro-cache"

SECTION_NAMES = ("exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "appendix", "hetero")


def _banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def _sweep_config(quick: bool) -> dict:
    """Shared sweep parameters for planning and rendering."""
    return {
        "ns": (4,) if quick else (2, 4, 8),
        "datasets": {
            "cn": ["twitter_like"] if quick else ["livejournal_like", "twitter_like"],
            "tc": ["livejournal_like"]
            if quick
            else ["livejournal_like", "twitter_like"],
            "wcc": ["twitter_like"] if quick else ["twitter_like", "ukweb_like"],
            "pr": ["twitter_like"] if quick else ["twitter_like", "ukweb_like"],
            "sssp": ["twitter_like"]
            if quick
            else ["twitter_like", "ukweb_like", "traffic_like"],
        },
        "table_n": 4 if quick else 8,
        "factors": (1, 2) if quick else (1, 2, 3, 4, 5),
        "num_graphs": 3 if quick else 6,
        "reference_dataset": "livejournal_like",
        "appendix_baselines": ("xtrapulp", "grid"),
        "hetero_n": 4,
        "hetero_baselines": ("xtrapulp", "ne"),
        "hetero_algorithms": ("pr",) if quick else ("pr", "wcc", "sssp"),
    }


# ----------------------------------------------------------------------
# Planning: declare every cell a section will read (the warm phase
# executes them in parallel before the serial table rendering).
# ----------------------------------------------------------------------
def _plan_exp1(planner: Planner, cfg: dict) -> None:
    for algorithm, names in cfg["datasets"].items():
        for dataset in names:
            exp1.plan_figure9(planner, algorithm, dataset, cfg["ns"])
    exp1.plan_table3(planner)


def _plan_exp2(planner: Planner, cfg: dict) -> None:
    exp2.plan_table4(planner, num_fragments=cfg["table_n"])


def _plan_exp3(planner: Planner, cfg: dict) -> None:
    exp3.plan_figure9k(planner, fragment_counts=cfg["ns"])


def _plan_exp4(planner: Planner, cfg: dict) -> None:
    exp4.plan_figure10b(planner, num_fragments=cfg["table_n"])


def _plan_exp5(planner: Planner, cfg: dict) -> None:
    exp5.plan_figure9l(planner, factors=cfg["factors"])


def _plan_exp6(planner: Planner, cfg: dict) -> None:
    exp6.plan_table5(planner, num_graphs=cfg["num_graphs"])
    exp6.plan_reference_times(planner, cfg["reference_dataset"])


def _plan_appendix(planner: Planner, cfg: dict) -> None:
    for baseline in cfg["appendix_baselines"]:
        appendix.plan_phase_speedups(planner, baseline=baseline)


def _plan_hetero(planner: Planner, cfg: dict) -> None:
    hetero.plan_hetero(
        planner,
        num_fragments=cfg["hetero_n"],
        baselines=cfg["hetero_baselines"],
        algorithms=cfg["hetero_algorithms"],
    )


# ----------------------------------------------------------------------
# Rendering: compute-or-load through the engine and print the tables.
# ----------------------------------------------------------------------
def _render_exp1(cfg: dict) -> None:
    _banner("Exp-1: effectiveness (Fig. 9(a-j))")
    for algorithm, names in cfg["datasets"].items():
        for dataset in names:
            series = exp1.figure9_series(algorithm, dataset, cfg["ns"])
            print()
            print(
                series_block(
                    f"[{algorithm.upper()} on {dataset}] simulated seconds",
                    "n",
                    series,
                )
            )
            print("avg speedups:", exp1.speedups(series))

    _banner("Table 3: partition metrics (twitter_like, n=8)")
    print(format_table(exp1.table3_headers(), exp1.table3_rows()))


def _render_exp2(cfg: dict) -> None:
    _banner("Exp-2: composite effectiveness (Table 4 / Fig. 10(a))")
    data = exp2.table4(num_fragments=cfg["table_n"])
    baselines = list(data)
    print(format_table(exp2.table4_headers(baselines), exp2.table4_rows(data)))
    print("batch overhead of ParMHP vs ParHP:", {
        k: f"{v:.1%}" for k, v in exp2.composite_overhead(data).items()
    })


def _render_exp3(cfg: dict) -> None:
    _banner("Exp-3: refiner efficiency (Fig. 9(k))")
    eff = exp3.figure9k(fragment_counts=cfg["ns"])
    print(format_table(exp3.HEADERS, exp3.rows(eff)))


def _render_exp4(cfg: dict) -> None:
    _banner("Exp-4: composite efficiency (Fig. 10(b) + space)")
    comp = exp4.figure10b(num_fragments=cfg["table_n"])
    print(format_table(exp4.HEADERS, exp4.rows(comp)))


def _render_exp5(cfg: dict) -> None:
    _banner("Exp-5: scalability (Fig. 9(l))")
    scal = exp5.figure9l(factors=cfg["factors"])
    print(format_table(exp5.headers(scal), exp5.rows(scal)))


def _render_exp6(cfg: dict) -> None:
    _banner("Exp-6: cost model learning (Table 5)")
    print(format_table(exp6.HEADERS, exp6.table5_rows(num_graphs=cfg["num_graphs"])))
    reference_times = exp6.reference_times(cfg["reference_dataset"])
    print(
        "single-machine reference times (Gunrock substitute):",
        {k: f"{v:.2f}s" for k, v in reference_times.items()},
    )


def _render_appendix(cfg: dict) -> None:
    _banner("Appendix: phase decomposition (Fig. 11)")
    for baseline in cfg["appendix_baselines"]:
        decomposition = appendix.phase_speedups(baseline=baseline)
        print(f"\n[{'ParE2H' if baseline == 'xtrapulp' else 'ParV2H'} on {baseline}]")
        print(format_table(appendix.HEADERS, appendix.contribution_rows(decomposition)))


def _render_hetero(cfg: dict) -> None:
    _banner("Hetero: capacity-aware refinement on skewed clusters (§13)")
    data = hetero.hetero_table(
        num_fragments=cfg["hetero_n"],
        baselines=cfg["hetero_baselines"],
        algorithms=cfg["hetero_algorithms"],
    )
    print(format_table(hetero.HEADERS, hetero.rows(data)))
    print(
        "best blind/aware speedup per scenario:",
        {k: f"{v:.2f}x" for k, v in hetero.capacity_gains(data).items()},
    )


SECTIONS = {
    "exp1": (_plan_exp1, _render_exp1),
    "exp2": (_plan_exp2, _render_exp2),
    "exp3": (_plan_exp3, _render_exp3),
    "exp4": (_plan_exp4, _render_exp4),
    "exp5": (_plan_exp5, _render_exp5),
    "exp6": (_plan_exp6, _render_exp6),
    "appendix": (_plan_appendix, _render_appendix),
    "hetero": (_plan_hetero, _render_hetero),
}


def build_plan(selected, quick: bool) -> Planner:
    """The job graph covering every cell the selected sections read."""
    cfg = _sweep_config(quick)
    planner = Planner()
    for name in selected:
        SECTIONS[name][0](planner, cfg)
    return planner


def _parse_only(spec: str, parser: argparse.ArgumentParser):
    names = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [name for name in names if name not in SECTIONS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join(SECTION_NAMES)}"
        )
    # preserve canonical order regardless of how --only lists them
    return [name for name in SECTION_NAMES if name in names]


def main(argv=None) -> int:
    """Run every experiment; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the warm phase (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"artifact cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="use an ephemeral cache deleted after the run",
    )
    parser.add_argument(
        "--only",
        metavar="NAMES",
        help=f"comma-separated subset of {','.join(SECTION_NAMES)}",
    )
    parser.add_argument(
        "--no-kernels",
        action="store_true",
        help="run algorithms via the scalar reference loops (slower; "
        "results are bit-identical to the kernel path)",
    )
    parser.add_argument(
        "--cluster-spec",
        metavar="PATH",
        help="JSON cluster spec (per-worker speeds/bandwidths); refiners "
        "and the simulator charge heterogeneous capacities everywhere",
    )
    parser.add_argument(
        "--backend",
        choices=["simulated", "shm"],
        default=None,
        help="execution backend for algorithm runs: 'shm' uses shared-"
        "memory worker processes (simulated metrics stay bit-identical)",
    )
    parser.add_argument(
        "--shm-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend shm (default: min(4, cpus))",
    )
    resilience_group = parser.add_argument_group(
        "resilience", "failure policy of the warm phase"
    )
    resilience_group.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline; overdue jobs are hedged/retried",
    )
    resilience_group.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="pool attempts per job before in-process degradation (default: 3)",
    )
    resilience_group.add_argument(
        "--no-hedge",
        action="store_true",
        help="abandon overdue jobs instead of racing a duplicate attempt",
    )
    resilience_group.add_argument(
        "--no-validate",
        action="store_true",
        help="skip artifact checksum validation (overhead measurement only)",
    )
    chaos_group = parser.add_argument_group(
        "chaos injection", "deterministic failure injection (tests/benchmarks)"
    )
    chaos_group.add_argument(
        "--chaos-seed", type=int, default=0, help="seed for chaos fate draws"
    )
    chaos_group.add_argument(
        "--chaos-kill",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a first attempt kills its worker process",
    )
    chaos_group.add_argument(
        "--chaos-hang",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a first attempt hangs before computing",
    )
    chaos_group.add_argument(
        "--chaos-corrupt",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a stored artifact is corrupted in place",
    )
    chaos_group.add_argument(
        "--chaos-torn",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a stored artifact is truncated mid-JSON",
    )
    chaos_group.add_argument(
        "--chaos-hang-seconds",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="how long a hung job sleeps (default: 1.0)",
    )
    chaos_group.add_argument(
        "--chaos-every-attempt",
        action="store_true",
        help="let chaos sabotage retries too, not just attempt 0 "
        "(convergence is no longer guaranteed; pair with low rates)",
    )
    trace_group = parser.add_argument_group(
        "failure traces", "record/replay of fired chaos fates"
    )
    trace_group.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record every fired chaos fate to a JSONL failure trace",
    )
    trace_group.add_argument(
        "--trace-in",
        metavar="PATH",
        help="replay the fates of a recorded failure trace "
        "(bypasses the --chaos-* rates)",
    )
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(argv)
    if args.trace_out and args.trace_in:
        parser.error("--trace-out and --trace-in are mutually exclusive")

    if args.no_kernels:
        # Flip the default before planning: run specs record the flag, so
        # subprocess workers execute the scalar path too.
        from repro.algorithms.base import set_kernels_default

        set_kernels_default(False)

    if args.cluster_spec:
        # Same pattern: planned cells record the spec payload, so spawn
        # workers rebuild the identical heterogeneous cluster.
        from repro.runtime.clusterspec import ClusterSpec, set_cluster_spec_default

        try:
            set_cluster_spec_default(ClusterSpec.load(args.cluster_spec))
        except (OSError, ValueError) as exc:
            parser.error(str(exc))

    if args.backend:
        # Same pattern again: planned run cells fold the non-default
        # backend, so spawn workers execute over shared memory too.
        from repro.runtime.parallel import set_backend_default

        try:
            set_backend_default(args.backend, args.shm_workers)
        except (ValueError, RuntimeError) as exc:
            parser.error(str(exc))

    selected = _parse_only(args.only, parser) if args.only else list(SECTION_NAMES)
    jobs = max(1, args.jobs)
    cfg = _sweep_config(args.quick)
    start = time.perf_counter()

    # --no-cache still uses a (throwaway) disk cache: worker processes
    # exchange artifacts through it, and cold-path object construction is
    # identical either way.
    ephemeral = None
    cache_root = args.cache_dir
    if args.no_cache:
        ephemeral = tempfile.mkdtemp(prefix="repro-cache-")
        cache_root = ephemeral

    from repro.eval.engine import EngineChaos, ResilienceConfig, RetryPolicy
    from repro.runtime.trace import FailureTrace

    trace = None
    if args.trace_in:
        loaded = FailureTrace.load(args.trace_in)
        engine_meta = loaded.meta.get("engine", {})
        chaos = EngineChaos(
            seed=args.chaos_seed,
            hang_seconds=float(
                engine_meta.get("hang_seconds", args.chaos_hang_seconds)
            ),
            scripted=loaded.engine_script(),
        )
    else:
        chaos = EngineChaos(
            seed=args.chaos_seed,
            kill_rate=args.chaos_kill,
            hang_rate=args.chaos_hang,
            corrupt_rate=args.chaos_corrupt,
            torn_rate=args.chaos_torn,
            hang_seconds=args.chaos_hang_seconds,
            first_attempt_only=not args.chaos_every_attempt,
        )
        if args.trace_out:
            trace = FailureTrace(
                meta={
                    "command": "run_all",
                    "argv": raw_argv,
                    "engine": {"hang_seconds": args.chaos_hang_seconds},
                }
            )
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=max(1, args.max_attempts), seed=args.chaos_seed),
        timeout=args.job_timeout,
        hedge=not args.no_hedge,
    )

    engine = EvalEngine(
        cache=ArtifactCache(cache_root, validate=not args.no_validate)
    )
    try:
        with use_engine(engine):
            # Chaos needs a warm phase to inject into, so a chaos-injected
            # serial run still warms first (the render replays artifacts).
            if jobs > 1 or not chaos.is_empty:
                planner = build_plan(selected, args.quick)
                report = engine.warm(
                    planner.graph,
                    jobs=jobs,
                    resilience=resilience,
                    chaos=chaos,
                    trace=trace,
                )
                print(
                    f"[warm] {report.total} cells: {report.computed} computed, "
                    f"{report.hits} from cache ({jobs} jobs)",
                    file=sys.stderr,
                )
                if report.resilience.total_events:
                    print(
                        f"[resilience] {report.resilience.describe()}",
                        file=sys.stderr,
                    )
            for name in selected:
                before = engine.stats.snapshot()
                SECTIONS[name][1](cfg)
                delta = engine.stats.delta(before)
                print(f"[cache] {name}: {delta.describe()}", file=sys.stderr)
    finally:
        if trace is not None:
            trace.save(args.trace_out)
            print(
                f"[trace] {len(trace)} fates recorded to {args.trace_out}",
                file=sys.stderr,
            )
        if ephemeral is not None:
            shutil.rmtree(ephemeral, ignore_errors=True)

    print(f"Total: {time.perf_counter() - start:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
