"""Run every experiment and print paper-style tables.

Usage::

    python -m repro.eval.run_all            # full sweep (several minutes)
    python -m repro.eval.run_all --quick    # reduced sweep (~1 minute)

The benchmarks under ``benchmarks/`` invoke the same experiment modules
one table/figure at a time; this script is the one-shot reproduction of
the whole evaluation section, and is what EXPERIMENTS.md's measured
numbers come from.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.datasets import load_dataset
from repro.eval.experiments import appendix, exp1, exp2, exp3, exp4, exp5, exp6
from repro.eval.reporting import format_table, series_block


def _banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def main(argv=None) -> int:
    """Run every experiment; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    args = parser.parse_args(argv)

    ns = (4,) if args.quick else (2, 4, 8)
    datasets = {
        "cn": ["twitter_like"] if args.quick else ["livejournal_like", "twitter_like"],
        "tc": ["livejournal_like"] if args.quick else ["livejournal_like", "twitter_like"],
        "wcc": ["twitter_like"] if args.quick else ["twitter_like", "ukweb_like"],
        "pr": ["twitter_like"] if args.quick else ["twitter_like", "ukweb_like"],
        "sssp": ["twitter_like"] if args.quick else ["twitter_like", "ukweb_like", "traffic_like"],
    }
    start = time.perf_counter()

    _banner("Exp-1: effectiveness (Fig. 9(a-j))")
    for algorithm, names in datasets.items():
        for dataset in names:
            series = exp1.figure9_series(algorithm, dataset, ns)
            print()
            print(
                series_block(
                    f"[{algorithm.upper()} on {dataset}] simulated seconds",
                    "n",
                    series,
                )
            )
            print("avg speedups:", exp1.speedups(series))

    _banner("Table 3: partition metrics (twitter_like, n=8)")
    print(format_table(exp1.table3_headers(), exp1.table3_rows()))

    _banner("Exp-2: composite effectiveness (Table 4 / Fig. 10(a))")
    data = exp2.table4(num_fragments=4 if args.quick else 8)
    baselines = list(data)
    print(format_table(exp2.table4_headers(baselines), exp2.table4_rows(data)))
    print("batch overhead of ParMHP vs ParHP:", {
        k: f"{v:.1%}" for k, v in exp2.composite_overhead(data).items()
    })

    _banner("Exp-3: refiner efficiency (Fig. 9(k))")
    eff = exp3.figure9k(fragment_counts=ns)
    print(format_table(exp3.HEADERS, exp3.rows(eff)))

    _banner("Exp-4: composite efficiency (Fig. 10(b) + space)")
    comp = exp4.figure10b(num_fragments=4 if args.quick else 8)
    print(format_table(exp4.HEADERS, exp4.rows(comp)))

    _banner("Exp-5: scalability (Fig. 9(l))")
    factors = (1, 2) if args.quick else (1, 2, 3, 4, 5)
    scal = exp5.figure9l(factors=factors)
    print(format_table(exp5.headers(scal), exp5.rows(scal)))

    _banner("Exp-6: cost model learning (Table 5)")
    rows = exp6.table5(num_graphs=3 if args.quick else 6)
    print(format_table(exp6.HEADERS, [r.as_row() for r in rows]))
    reference_times = exp6.gunrock_substitute_times(load_dataset("livejournal_like"))
    print(
        "single-machine reference times (Gunrock substitute):",
        {k: f"{v:.2f}s" for k, v in reference_times.items()},
    )

    _banner("Appendix: phase decomposition (Fig. 11)")
    for baseline in ("xtrapulp", "grid"):
        decomposition = appendix.phase_speedups(baseline=baseline)
        print(f"\n[{'ParE2H' if baseline == 'xtrapulp' else 'ParV2H'} on {baseline}]")
        print(format_table(appendix.HEADERS, appendix.contribution_rows(decomposition)))

    print(f"\nTotal: {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
