"""Dataset registry: scaled synthetic substitutes for the paper's graphs.

The paper's real datasets (liveJournal 4.8M/68M, Twitter 42M/1.5B, UKWeb
106M/3.7B, the US ``traffic`` road network) are unavailable offline, so
each is replaced by a generator-backed stand-in with matched *shape* at
~10³ vertices (see DESIGN.md §1):

==================  =======================================================
name                shape reproduced
==================  =======================================================
``livejournal_like`` directed social network, power-law exponent ≈ 2.3
``twitter_like``     heavier-hub directed network, exponent ≈ 2.0 — the
                     skew that makes edge-cut workloads explode for CN/TC
``ukweb_like``       sparser, larger directed web-ish graph, exponent 2.1
``traffic_like``     planar road grid: high diameter, near-uniform degree
``scale_1..5``       the Exp-5 scale-up series (|G| to 5×|G|)
==================  =======================================================

Graphs are built once per process and cached; every generator is seeded,
so all experiments see identical inputs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict

from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, road_grid


def _livejournal_like() -> Graph:
    return chung_lu_power_law(2000, 10.0, exponent=2.3, directed=True, seed=101)


def _twitter_like() -> Graph:
    return chung_lu_power_law(2400, 12.0, exponent=2.0, directed=True, seed=202)


def _ukweb_like() -> Graph:
    return chung_lu_power_law(3000, 9.0, exponent=2.1, directed=True, seed=303)


def _traffic_like() -> Graph:
    return road_grid(50, 50, diagonal_prob=0.05, seed=404)


def _scale(factor: int) -> Callable[[], Graph]:
    def build() -> Graph:
        return chung_lu_power_law(
            1000 * factor, 12.0, exponent=2.1, directed=True, seed=500 + factor
        )

    return build


DATASETS: Dict[str, Callable[[], Graph]] = {
    "livejournal_like": _livejournal_like,
    "twitter_like": _twitter_like,
    "ukweb_like": _ukweb_like,
    "traffic_like": _traffic_like,
}
for _factor in range(1, 6):
    DATASETS[f"scale_{_factor}"] = _scale(_factor)

#: CN degree threshold used on twitter_like (the paper uses θ = 300 on
#: Twitter and θ = ∞ on liveJournal; scaled to our degree range).
CN_THETA = {"twitter_like": 300, "livejournal_like": None, "ukweb_like": 300}


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Build (or fetch from cache) the named dataset graph."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    return factory()
