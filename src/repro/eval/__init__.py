"""Evaluation framework: datasets, harness and the paper's experiments.

One module per experiment of Section 7 (plus the appendix), each able to
regenerate its table/figure on the scaled-down synthetic datasets:

* ``exp1`` — effectiveness of ParE2H/ParV2H (Fig. 9(a-j), Table 3);
* ``exp2`` — effectiveness of ParME2H/ParMV2H (Table 4, Fig. 10(a));
* ``exp3`` — efficiency of the refiners (Fig. 9(k));
* ``exp4`` — efficiency of the composite refiners (Fig. 10(b), space);
* ``exp5`` — scalability in |G| (Fig. 9(l));
* ``exp6`` — cost-model learning accuracy/time (Table 5);
* ``appendix`` — per-phase speedup decomposition (Fig. 11).

``python -m repro.eval.run_all`` runs everything and regenerates
EXPERIMENTS.md's measured numbers.
"""

from repro.eval.datasets import DATASETS, load_dataset
from repro.eval.harness import (
    BASELINES,
    refine_for,
    run_algorithm,
    partition_and_refine,
)

__all__ = [
    "DATASETS",
    "load_dataset",
    "BASELINES",
    "refine_for",
    "run_algorithm",
    "partition_and_refine",
]
