"""Property-based tests: partition invariants under random construction
and random mutation sequences."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition, NodeRole
from repro.partition.quality import (
    edge_replication_ratio,
    vertex_replication_ratio,
)
from repro.partition.validation import check_partition, is_edge_cut, is_vertex_cut

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=12, directed=None):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    if directed is None:
        directed = draw(st.booleans())
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=3 * n,
        )
    )
    return Graph(n, edges, directed=directed)


@st.composite
def edge_cut_cases(draw):
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    assignment = [draw(st.integers(0, k - 1)) for _ in range(graph.num_vertices)]
    return graph, assignment, k


@st.composite
def vertex_cut_cases(draw):
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
    return graph, assignment, k


@given(edge_cut_cases())
@SETTINGS
def test_vertex_assignment_always_valid_edge_cut(case):
    graph, assignment, k = case
    p = HybridPartition.from_vertex_assignment(graph, assignment, k)
    check_partition(p)
    assert is_edge_cut(p)


@given(vertex_cut_cases())
@SETTINGS
def test_edge_assignment_always_valid_vertex_cut(case):
    graph, assignment, k = case
    p = HybridPartition.from_edge_assignment(graph, assignment, k)
    check_partition(p)
    assert is_vertex_cut(p)
    assert edge_replication_ratio(p) <= 1.0 + 1e-9


@given(edge_cut_cases())
@SETTINGS
def test_exactly_one_bearing_copy_per_ecut_vertex(case):
    graph, assignment, k = case
    p = HybridPartition.from_vertex_assignment(graph, assignment, k)
    for v in graph.vertices:
        bearing = [
            fid for fid in p.placement(v) if p.role(v, fid) is not NodeRole.DUMMY
        ]
        assert len(bearing) == 1


@given(vertex_cut_cases(), st.randoms(use_true_random=False))
@SETTINGS
def test_random_mutations_preserve_invariants(case, rng):
    graph, assignment, k = case
    p = HybridPartition.from_edge_assignment(graph, assignment, k)
    edges = list(graph.edges())
    for _ in range(15):
        if not edges:
            break
        edge = rng.choice(edges)
        fid = rng.randrange(k)
        if p.fragments[fid].has_edge(edge):
            holders = [f for f in range(k) if p.fragments[f].has_edge(edge)]
            if len(holders) > 1:
                p.remove_edge_from(fid, edge)
        else:
            p.add_edge_to(fid, edge)
    check_partition(p)


@given(edge_cut_cases())
@SETTINGS
def test_replication_ratios_at_least_one(case):
    graph, assignment, k = case
    p = HybridPartition.from_vertex_assignment(graph, assignment, k)
    if graph.num_vertices:
        assert vertex_replication_ratio(p) >= 1.0 - 1e-9
    if graph.num_edges:
        assert edge_replication_ratio(p) >= 1.0 - 1e-9


@given(edge_cut_cases())
@SETTINGS
def test_copy_roundtrip_preserves_structure(case):
    graph, assignment, k = case
    p = HybridPartition.from_vertex_assignment(graph, assignment, k)
    clone = p.copy()
    assert clone.total_vertex_copies() == p.total_vertex_copies()
    assert clone.total_edge_copies() == p.total_edge_copies()
    for v, hosts in p.vertex_fragments():
        assert clone.placement(v) == hosts
        assert clone.master(v) == p.master(v)
