"""Property tests for the heterogeneous cluster model.

Three invariants that must hold for *any* spec, not just the scenarios
the differential suite pins:

* slowing any single worker never decreases an algorithm's makespan
  (superstep time is a max over per-worker normalized loads — monotone
  in every worker's slowness);
* with a pure-compute clock (zero byte cost, zero barrier latency),
  scaling every speed by ``k`` scales the makespan by ``1/k``;
* ``ClusterSpec`` survives a JSON round trip identically.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import get_algorithm
from repro.graph.generators import chung_lu_power_law
from repro.partitioners.base import get_partitioner
from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.costclock import CostClock

N = 4

_GRAPH = None
_PARTITION = None


def _partition():
    """Small shared fixture partition (built lazily, reused per process)."""
    global _GRAPH, _PARTITION
    if _PARTITION is None:
        _GRAPH = chung_lu_power_law(150, 5.0, exponent=2.1, directed=True, seed=5)
        _PARTITION = get_partitioner("hash").partition(_GRAPH, N)
    return _PARTITION


def _makespan(spec, clock=None):
    result = get_algorithm("pr").run(
        _partition(), clock=clock, cluster_spec=spec, iterations=3
    )
    return result.makespan


speeds_strategy = st.lists(
    st.floats(min_value=0.25, max_value=4.0, allow_nan=False, allow_infinity=False),
    min_size=N,
    max_size=N,
)


@settings(max_examples=20, deadline=None)
@given(
    speeds=speeds_strategy,
    worker=st.integers(min_value=0, max_value=N - 1),
    factor=st.floats(min_value=0.1, max_value=0.9),
)
def test_slowing_any_worker_never_decreases_makespan(speeds, worker, factor):
    base = ClusterSpec(speeds=tuple(speeds), bandwidths=(1.0,) * N)
    slowed_speeds = list(speeds)
    slowed_speeds[worker] *= factor
    slowed = ClusterSpec(speeds=tuple(slowed_speeds), bandwidths=(1.0,) * N)
    assert _makespan(slowed) >= _makespan(base)


@settings(max_examples=20, deadline=None)
@given(
    speeds=speeds_strategy,
    k=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
)
def test_scaling_all_speeds_scales_compute_time(speeds, k):
    # pure-compute clock: no byte charges, no barrier latency, so the
    # makespan is exactly the sum of per-superstep compute maxima
    clock = CostClock(op_cost=1e-7, byte_cost=0.0, superstep_latency=0.0)
    base = ClusterSpec(speeds=tuple(speeds), bandwidths=(1.0,) * N)
    scaled = ClusterSpec(
        speeds=tuple(s * k for s in speeds), bandwidths=(1.0,) * N
    )
    assert _makespan(scaled, clock) == pytest.approx(
        _makespan(base, clock) / k, rel=1e-9
    )


@st.composite
def cluster_specs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    capacity = st.floats(
        min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
    )
    speeds = tuple(draw(st.lists(capacity, min_size=n, max_size=n)))
    bandwidths = tuple(draw(st.lists(capacity, min_size=n, max_size=n)))
    pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))) if pairs else []
    links = tuple((s, d, draw(capacity)) for s, d in chosen)
    return ClusterSpec(speeds=speeds, bandwidths=bandwidths, links=links)


@settings(max_examples=100, deadline=None)
@given(spec=cluster_specs())
def test_json_round_trip_identity(spec):
    assert ClusterSpec.from_dict(spec.to_dict()) == spec
    through_text = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert through_text == spec
    assert through_text.digest() == spec.digest()
