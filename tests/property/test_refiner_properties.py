"""Property-based tests for the refiners: validity and algorithm
correctness must survive refinement of arbitrary partitions."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.algorithms.reference import reference_wcc
from repro.algorithms.registry import get_algorithm
from repro.core.e2h import E2H
from repro.core.tracker import CostTracker
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.partition.validation import check_partition

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def partitioned_graphs(draw, vertex_cut=False):
    n = draw(st.integers(min_value=3, max_value=14))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=4 * n,
        )
    )
    graph = Graph(n, edges, directed=draw(st.booleans()))
    k = draw(st.integers(min_value=2, max_value=3))
    if vertex_cut:
        assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
        partition = HybridPartition.from_edge_assignment(graph, assignment, k)
    else:
        assignment = [draw(st.integers(0, k - 1)) for _ in range(n)]
        partition = HybridPartition.from_vertex_assignment(graph, assignment, k)
    return graph, partition


@given(partitioned_graphs(vertex_cut=False), st.sampled_from(["cn", "pr", "wcc"]))
@SETTINGS
def test_e2h_validity_and_bounded_overshoot(case, alg):
    """E2H is greedy: it cannot guarantee strict improvement on arbitrary
    (including already-balanced) inputs, but no fragment's computational
    cost may exceed the larger of the initial maximum and the budget by
    more than one vertex's worth of granularity."""
    graph, partition = case
    model = builtin_cost_model(alg)
    t0 = CostTracker(partition, model)
    before_max = max(t0.comp_costs())
    budget = sum(t0.comp_costs()) / partition.num_fragments
    max_price = max(
        (t0.price_as_ecut(v) for v in graph.vertices), default=0.0
    )
    t0.detach()
    refined = E2H(model).refine(partition)
    check_partition(refined)
    t1 = CostTracker(refined, model)
    after_max = max(t1.comp_costs())
    # Two vertices' granularity: an ESplit edge move can co-locate both
    # endpoints' bearing copies on the receiving fragment.
    bound = max(before_max, budget) + 2.0 * max_price
    assert after_max <= bound * 1.05 + 1e-9
    t1.detach()


@given(partitioned_graphs(vertex_cut=True), st.sampled_from(["tc", "pr"]))
@SETTINGS
def test_v2h_preserves_validity(case, alg):
    _graph, partition = case
    model = builtin_cost_model(alg)
    refined = V2H(model).refine(partition)
    check_partition(refined)


@given(partitioned_graphs(vertex_cut=False))
@SETTINGS
def test_wcc_correct_on_refined_partition(case):
    graph, partition = case
    refined = E2H(builtin_cost_model("wcc")).refine(partition)
    result = get_algorithm("wcc").run(refined)
    assert result.values == reference_wcc(graph)


@given(partitioned_graphs(vertex_cut=True))
@SETTINGS
def test_wcc_correct_on_v2h_refined_partition(case):
    graph, partition = case
    refined = V2H(builtin_cost_model("wcc")).refine(partition)
    result = get_algorithm("wcc").run(refined)
    assert result.values == reference_wcc(graph)
