"""Property-based tests for the guarded refinement pipeline.

Random graphs, random initial partitions, and seeded chaos plans: the
guard must (1) never change the output when idle, (2) always hand back
a valid partition under corruption, (3) repair index corruption exactly
when checked immediately, and (4) terminate within budgets with a
valid best-so-far partition.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.e2h import E2H
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.graph.digraph import Graph
from repro.integrity.chaos import ChaosPlan, PartitionChaos
from repro.integrity.guard import GuardConfig, RefinementGuard
from repro.integrity.repair import repair_indexes
from repro.partition.hybrid import HybridPartition
from repro.partition.serialize import partition_to_dict
from repro.partition.validation import check_partition, collect_violations

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def partitioned_graphs(draw, vertex_cut=False):
    n = draw(st.integers(min_value=3, max_value=14))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=4 * n,
        )
    )
    graph = Graph(n, edges, directed=draw(st.booleans()))
    k = draw(st.integers(min_value=2, max_value=3))
    if vertex_cut:
        assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
        partition = HybridPartition.from_edge_assignment(graph, assignment, k)
    else:
        assignment = [draw(st.integers(0, k - 1)) for _ in range(n)]
        partition = HybridPartition.from_vertex_assignment(graph, assignment, k)
    return graph, partition


chaos_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(
    partitioned_graphs(vertex_cut=False),
    st.sampled_from([1, 3, 17]),
    st.sampled_from(["cn", "pr", "wcc"]),
)
@SETTINGS
def test_idle_guard_is_invisible(case, interval, alg):
    """Any cadence, no chaos: guarded output equals unguarded output."""
    _graph, partition = case
    model = builtin_cost_model(alg)
    plain = E2H(model).refine(partition)
    guarded = E2H(
        model, guard_config=GuardConfig(check_interval=interval)
    ).refine(partition)
    assert partition_to_dict(guarded) == partition_to_dict(plain)


@given(partitioned_graphs(vertex_cut=False), chaos_seeds)
@SETTINGS
def test_e2h_always_survives_chaos(case, seed):
    _graph, partition = case
    refiner = E2H(
        builtin_cost_model("pr"),
        guard_config=GuardConfig(
            check_interval=2,
            chaos=ChaosPlan(seed=seed, corrupt_rate=0.5),
        ),
    )
    refined = refiner.refine(partition)
    check_partition(refined)
    assert refiner.last_stats.guard.unrepaired_violations == 0


@given(partitioned_graphs(vertex_cut=True), chaos_seeds)
@SETTINGS
def test_v2h_always_survives_chaos(case, seed):
    _graph, partition = case
    refiner = V2H(
        builtin_cost_model("tc"),
        guard_config=GuardConfig(
            check_interval=2,
            chaos=ChaosPlan(seed=seed, corrupt_rate=0.5),
        ),
    )
    refined = refiner.refine(partition)
    check_partition(refined)
    assert refiner.last_stats.guard.unrepaired_violations == 0


@given(
    partitioned_graphs(vertex_cut=False),
    chaos_seeds,
    st.sampled_from(["placement", "roles"]),
)
@SETTINGS
def test_index_corruption_repaired_exactly(case, seed, kind):
    """Placement/role indexes are fully determined by fragment contents:
    repair after each corruption restores the exact prior state."""
    _graph, partition = case
    pristine = partition_to_dict(partition)
    chaos = PartitionChaos(
        ChaosPlan(seed=seed, corrupt_rate=1.0, kinds=(kind,))
    )
    for _ in range(3):
        chaos.corrupt(partition)
        repair_indexes(partition)
    assert collect_violations(partition) == []
    assert partition_to_dict(partition) == pristine


@given(partitioned_graphs(vertex_cut=False), chaos_seeds)
@SETTINGS
def test_master_corruption_repaired_to_validity(case, seed):
    """Masters are ambiguous without a reference: repair restores a
    valid (not necessarily original) assignment."""
    _graph, partition = case
    chaos = PartitionChaos(
        ChaosPlan(seed=seed, corrupt_rate=1.0, kinds=("masters",))
    )
    for _ in range(3):
        chaos.corrupt(partition)
        repair_indexes(partition)
    assert collect_violations(partition) == []


@given(
    partitioned_graphs(vertex_cut=False),
    st.integers(min_value=1, max_value=6),
)
@SETTINGS
def test_step_budget_terminates_with_valid_output(case, max_steps):
    _graph, partition = case
    refiner = E2H(
        builtin_cost_model("pr"),
        guard_config=GuardConfig(check_interval=1, max_steps=max_steps),
    )
    refined = refiner.refine(partition)
    check_partition(refined)
    stats = refiner.last_stats.guard
    assert stats.steps <= max_steps


@given(partitioned_graphs(vertex_cut=False), chaos_seeds)
@SETTINGS
def test_guard_harness_leaves_partition_valid(case, seed):
    """Driving a bare guard directly (no refiner): after finish() the
    partition is always valid, whatever the chaos did."""
    _graph, partition = case
    guard = RefinementGuard(
        partition,
        GuardConfig(
            check_interval=1,
            chaos=ChaosPlan(seed=seed, corrupt_rate=0.7),
        ),
    )
    for _ in range(10):
        guard.step()
    stats = guard.finish()
    assert collect_violations(partition) == []
    assert stats.unrepaired_violations == 0
