"""Property-based tests for polynomial cost functions."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.costmodel.polynomial import Monomial, PolynomialCostFunction

SETTINGS = settings(max_examples=60, deadline=None)

coefficients = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
powers = st.dictionaries(
    st.sampled_from(["x", "y", "z"]), st.integers(1, 3), max_size=3
)
features = st.fixed_dictionaries(
    {
        "x": st.floats(0.1, 50, allow_nan=False),
        "y": st.floats(0.1, 50, allow_nan=False),
        "z": st.floats(0.1, 50, allow_nan=False),
    }
)


@st.composite
def polynomials(draw, max_terms=5):
    terms = [
        Monomial(draw(coefficients), draw(powers))
        for _ in range(draw(st.integers(1, max_terms)))
    ]
    return PolynomialCostFunction(terms)


@given(polynomials(), features)
@SETTINGS
def test_serialization_round_trip_preserves_value(poly, feats):
    clone = PolynomialCostFunction.from_dict(poly.to_dict())
    assert abs(clone.evaluate(feats) - poly.evaluate(feats)) < 1e-6 * (
        1 + abs(poly.evaluate(feats))
    )


@given(polynomials(), features)
@SETTINGS
def test_evaluate_equals_term_sum(poly, feats):
    total = sum(t.evaluate(feats) for t in poly.terms)
    assert poly.evaluate(feats) == total


@given(polynomials(), features, st.floats(0.1, 10, allow_nan=False))
@SETTINGS
def test_coefficient_scaling_scales_value(poly, feats, factor):
    scaled = poly.with_coefficients([c * factor for c in poly.coefficients()])
    assert abs(scaled.evaluate(feats) - factor * poly.evaluate(feats)) < 1e-6 * (
        1 + abs(factor * poly.evaluate(feats))
    )


@given(polynomials(), features)
@SETTINGS
def test_pruned_drops_only_zero_terms(poly, feats):
    pruned = poly.pruned(0.0)
    assert abs(pruned.evaluate(feats) - poly.evaluate(feats)) < 1e-9 * (
        1 + abs(poly.evaluate(feats))
    )


@given(st.integers(1, 4), st.integers(1, 3))
@SETTINGS
def test_expansion_term_count_matches_combinatorics(num_vars, degree):
    import math

    variables = [f"v{i}" for i in range(num_vars)]
    poly = PolynomialCostFunction.expansion(variables, degree)
    expected = math.comb(num_vars + degree, degree)  # C(n+d, d) monomials
    assert len(poly.terms) == expected
