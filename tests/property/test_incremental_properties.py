"""Property tests for incremental maintenance (DESIGN §15).

The contract under test: however a deployment is mutated — through the
partition's own coherence hooks, or through ``apply_mutations`` driving
interleaved graph *and* partition changes — the next ``plan_for(...,
incremental=True)`` must hand back routing tables byte-identical to a
from-scratch compile, a net-empty delta must revalidate the cached plan
object instead of rebuilding it, and ``apply_mutations`` must leave
every partition it touches structurally valid.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.incremental import MutationBatch, apply_mutations
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.partition.validation import check_partition
from repro.runtime.plan import FragmentPlan, plan_for

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def partition_cases(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    directed = draw(st.booleans())
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=3 * n,
        )
    )
    graph = Graph(n, edges, directed=directed)
    k = draw(st.integers(min_value=1, max_value=4))
    if draw(st.booleans()):
        assignment = [draw(st.integers(0, k - 1)) for _ in range(n)]
        partition = HybridPartition.from_vertex_assignment(graph, assignment, k)
    else:
        edge_assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
        partition = HybridPartition.from_edge_assignment(graph, edge_assignment, k)
    return partition


def _assert_plans_identical(plan: FragmentPlan, partition: HybridPartition):
    """Every routing array must match a from-scratch compile, bit for bit."""
    fresh = FragmentPlan(partition)
    for name in (
        "master_of",
        "rep_count",
        "border_mask",
        "place_indptr",
        "place_fids",
    ):
        a, b = getattr(plan, name), getattr(fresh, name)
        assert np.array_equal(a, b), f"plan diverges from fresh compile in {name}"
        assert a.dtype == b.dtype
    assert np.array_equal(plan.home_of(), fresh.home_of())
    for fid in range(partition.num_fragments):
        assert np.array_equal(plan.verts(fid), fresh.verts(fid))
        assert np.array_equal(plan.roles(fid), fresh.roles(fid))
        assert plan.edge_list(fid) == fresh.edge_list(fid)


def _apply_partition_mutations(partition, data, rounds):
    n = partition.graph.num_vertices
    k = partition.num_fragments
    for _ in range(rounds):
        v = data.draw(st.integers(0, n - 1))
        hosts = sorted(partition.placement(v))
        if data.draw(st.booleans()):
            partition.add_vertex_to(data.draw(st.integers(0, k - 1)), v)
        elif hosts:
            partition.set_master(v, data.draw(st.sampled_from(hosts)))


@st.composite
def mutation_texts(draw, n):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["+", "-", "v"]))
        if kind == "v":
            lines.append(str(draw(st.integers(0, n + 2))))
            continue
        # Ids may run past the current vertex set: inserts imply their
        # endpoints, deletes of unknown endpoints are no-ops.
        u = draw(st.integers(0, n + 1))
        v = draw(st.integers(0, n + 1))
        if u != v:
            lines.append(f"{kind} {u} {v}")
    return "\n".join(lines) or f"{n}"


@given(partition_cases(), st.data())
@SETTINGS
def test_patched_plan_is_byte_identical(partition, data):
    """Partition-level churn: the delta-patched plan == fresh compile."""
    plan_for(partition)
    for _ in range(data.draw(st.integers(1, 3))):
        _apply_partition_mutations(
            partition, data, rounds=data.draw(st.integers(1, 4))
        )
        plan = plan_for(partition, incremental=True)
        assert plan.valid
        _assert_plans_identical(plan, partition)


@given(partition_cases(), st.data())
@SETTINGS
def test_plan_survives_interleaved_graph_and_partition_mutations(
    partition, data
):
    """apply_mutations batches interleaved with placement churn."""
    plan_for(partition)
    for _ in range(data.draw(st.integers(1, 3))):
        text = data.draw(mutation_texts(partition.graph.num_vertices))
        dirty = apply_mutations(partition, MutationBatch.parse(text))
        _apply_partition_mutations(
            partition, data, rounds=data.draw(st.integers(0, 3))
        )
        check_partition(partition)
        plan = plan_for(partition, incremental=True)
        assert plan.valid
        _assert_plans_identical(plan, partition)
        assert all(v >= 0 for v in dirty)


@given(partition_cases(), st.data())
@SETTINGS
def test_net_empty_delta_revalidates_same_plan(partition, data):
    """A delta that cancels out must hand back the same plan object."""
    plan = plan_for(partition)
    moved = False
    for v in range(partition.graph.num_vertices):
        hosts = sorted(partition.placement(v))
        if len(hosts) > 1:
            original = partition.master(v)
            other = next(fid for fid in hosts if fid != original)
            partition.set_master(v, other)
            partition.set_master(v, original)
            moved = True
            break
    if not moved:
        return
    assert plan_for(partition, incremental=True) is plan


@given(partition_cases(), st.data())
@SETTINGS
def test_apply_mutations_preserves_invariants(partition, data):
    graph = partition.graph
    text = data.draw(mutation_texts(graph.num_vertices))
    batch = MutationBatch.parse(text)
    reference = Graph(
        graph.num_vertices, list(graph.edges()), directed=graph.directed
    )
    dirty = apply_mutations(partition, batch)
    batch.apply_to_graph(reference)
    assert graph == reference
    check_partition(partition)
    for v in dirty:
        assert 0 <= v < graph.num_vertices
