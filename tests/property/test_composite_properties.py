"""Property-based tests for the composite partition representation."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.graph.digraph import Graph
from repro.partition.composite import CompositePartition
from repro.partition.hybrid import HybridPartition

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def composite_cases(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=3 * n,
        )
    )
    graph = Graph(n, edges, directed=True)
    k = draw(st.integers(min_value=2, max_value=3))
    num_partitions = draw(st.integers(min_value=2, max_value=3))
    partitions = {}
    for j in range(num_partitions):
        assignment = [draw(st.integers(0, k - 1)) for _ in range(n)]
        partitions[f"alg{j}"] = HybridPartition.from_vertex_assignment(
            graph, assignment, k
        )
    return CompositePartition(partitions)


@given(composite_cases())
@SETTINGS
def test_core_plus_residual_reconstructs_each_partition(composite):
    for j, name in enumerate(composite.names):
        partition = composite.partition_for(name)
        for comp, fragment in zip(
            composite.composite_fragments, partition.fragments
        ):
            assert comp.core_edges | comp.residual_edges[j] == set(fragment.edges())
            assert comp.core_vertices | comp.residual_vertices[j] == set(
                fragment.vertices()
            )


@given(composite_cases())
@SETTINGS
def test_fc_bounded_by_separate_storage(composite):
    assert (
        composite.composite_replication_ratio()
        <= composite.separate_storage_ratio() + 1e-9
    )
    assert 0.0 <= composite.space_saving() <= 1.0


@given(composite_cases())
@SETTINGS
def test_edge_index_complete(composite):
    for j, name in enumerate(composite.names):
        partition = composite.partition_for(name)
        for comp, fragment in zip(
            composite.composite_fragments, partition.fragments
        ):
            for edge in fragment.edges():
                in_core, residuals = comp.locate_edge(edge)
                assert in_core or j in residuals


@given(composite_cases())
@SETTINGS
def test_delete_every_edge_empties_index(composite):
    for edge in list(composite.graph.edges()):
        composite.delete_edge(edge)
    assert composite.index_size() == 0
    for comp in composite.composite_fragments:
        assert not comp.core_edges
        assert all(not r for r in comp.residual_edges)
