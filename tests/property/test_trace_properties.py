"""Property-based tests for failure-trace record/replay.

For random fault plans over a fixed partition, a recorded run replayed
from its trace must (a) fire the identical fate sequence (the replayed
run re-records the same events byte for byte) and (b) produce a
byte-identical ``RunProfile`` dict.  Trace files themselves round-trip
through JSONL for arbitrary events, and ``minimize`` always returns a
sub-trace that still satisfies the caller's predicate.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.generators import chung_lu_power_law
from repro.partitioners.base import get_partitioner
from repro.runtime.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    PermanentLossFault,
)
from repro.runtime.trace import FailureTrace, TraceEvent, minimize

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_GRAPH = chung_lu_power_law(60, 5.0, exponent=2.1, directed=True, seed=5)
_PARTITION = get_partitioner("fennel").partition(_GRAPH, 3)


@st.composite
def fault_plans(draw):
    """A random fault plan valid for the 3-worker fixture partition."""
    crashes = ()
    if draw(st.booleans()):
        crashes = (CrashFault(worker=draw(st.integers(0, 2)), superstep=draw(st.integers(0, 3))),)
    losses = ()
    if draw(st.booleans()):
        losses = (
            PermanentLossFault(
                worker=draw(st.integers(0, 2)), superstep=draw(st.integers(0, 3))
            ),
        )
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        crashes=crashes,
        losses=losses,
        drop_rate=draw(st.sampled_from([0.0, 0.02, 0.1])),
        duplicate_rate=draw(st.sampled_from([0.0, 0.05])),
    )


def _run(injector, checkpoint_interval):
    return (
        get_algorithm("pr")
        .configure_faults(injector, checkpoint_interval=checkpoint_interval)
        .run(_PARTITION)
    )


@given(plan=fault_plans(), checkpoint_interval=st.integers(0, 2))
@SETTINGS
def test_replay_roundtrip_is_byte_identical(plan, checkpoint_interval):
    trace = FailureTrace(meta={"plan": plan.to_dict()})
    recorded = _run(
        FaultInjector(plan, trace=trace, trace_scope="pr"), checkpoint_interval
    )

    replay_plan = FaultPlan(seed=plan.seed, stragglers=plan.stragglers)
    rerecorded = FailureTrace(meta=dict(trace.meta))
    replayed = _run(
        FaultInjector(
            replay_plan,
            trace=rerecorded,
            trace_scope="pr",
            replay=trace.runtime_replay("pr"),
        ),
        checkpoint_interval,
    )

    assert replayed.values == recorded.values
    assert replayed.profile.to_dict() == recorded.profile.to_dict()
    assert rerecorded.events == trace.events  # identical fate sequence


trace_events = st.builds(
    TraceEvent,
    stream=st.sampled_from(["runtime", "integrity", "engine"]),
    scope=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=8
    ),
    kind=st.sampled_from(["message", "crash", "loss", "corruption", "fate"]),
    index=st.integers(0, 2**31),
    payload=st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=6,
        ),
        st.one_of(st.integers(-100, 100), st.text(max_size=6), st.booleans()),
        max_size=3,
    ),
)


@given(events=st.lists(trace_events, max_size=20))
@settings(max_examples=50, deadline=None)
def test_trace_file_roundtrip(tmp_path_factory, events):
    path = str(tmp_path_factory.mktemp("trace") / "t.trace")
    trace = FailureTrace(meta={"command": "test"}, events=events)
    trace.save(path)
    assert FailureTrace.load(path) == trace


@given(plan=fault_plans())
@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_minimize_output_still_reproduces(plan):
    trace = FailureTrace(meta={"plan": plan.to_dict()})
    recorded = _run(FaultInjector(plan, trace=trace, trace_scope="pr"), 1)
    target = recorded.profile.losses  # reproduce "same number of losses"

    def reproduces(candidate):
        replayed = _run(
            FaultInjector(
                FaultPlan(seed=plan.seed),
                replay=candidate.runtime_replay("pr"),
            ),
            1,
        )
        return replayed.profile.losses == target

    reduced = minimize(trace, reproduces)
    assert reproduces(reduced)
    assert len(reduced) <= len(trace)
    # 1-minimal: no single remaining event can be dropped
    for index in range(len(reduced.events)):
        assert not reproduces(reduced.without(index))
