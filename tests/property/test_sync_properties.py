"""Property-based tests for master/mirror synchronization.

``sync_by_master`` is the exchange every partition-transparent algorithm
leans on; if it ever delivered different values to different copies of a
vertex — or different values across reruns — partition transparency
would silently break.  For random hybrid partitions we check both
invariants directly, plus agreement with a sequential reference
combine.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.runtime.bsp import Cluster
from repro.runtime.sync import sync_by_master

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_hybrid_partitions(draw):
    """A random graph plus a random hybrid partition of it.

    Same recipe as the algorithm-transparency suite: start from a random
    edge-cut and duplicate a few edges into extra fragments for genuine
    hybrid structure.
    """
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=3 * n,
        )
    )
    graph = Graph(n, edges, directed=draw(st.booleans()))
    k = draw(st.integers(min_value=2, max_value=3))
    assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
    partition = HybridPartition.from_edge_assignment(graph, assignment, k)
    all_edges = list(graph.edges())
    for _ in range(draw(st.integers(0, 5))):
        edge = all_edges[draw(st.integers(0, len(all_edges) - 1))]
        partition.add_edge_to(draw(st.integers(0, k - 1)), edge)
    return graph, partition


def partials_for(partition):
    """Distinct per-copy partials: value identifies the (fid, vertex) copy."""
    return {
        fragment.fid: {v: fragment.fid * 1000 + v for v in fragment.vertices()}
        for fragment in partition.fragments
    }


def run_sync(partition):
    cluster = Cluster(partition)
    out = sync_by_master(
        cluster, partials_for(partition), combine=lambda a, b: a + b
    )
    return out, cluster.profile.makespan


@given(random_hybrid_partitions())
@SETTINGS
def test_every_copy_sees_the_identical_combined_value(case):
    _graph, partition = case
    out, _makespan = run_sync(partition)
    for v, hosts in partition.vertex_fragments():
        values = [out[fid][v] for fid in hosts]
        assert len(set(values)) == 1, f"copies of {v} disagree: {values}"


@given(random_hybrid_partitions())
@SETTINGS
def test_combined_value_matches_sequential_reference(case):
    _graph, partition = case
    partials = partials_for(partition)
    out, _makespan = run_sync(partition)
    for v, hosts in partition.vertex_fragments():
        expected = sum(partials[fid][v] for fid in hosts)
        assert out[min(hosts)][v] == expected


@given(random_hybrid_partitions())
@SETTINGS
def test_sync_is_deterministic_across_repeated_runs(case):
    _graph, partition = case
    first_out, first_makespan = run_sync(partition)
    second_out, second_makespan = run_sync(partition)
    assert first_out == second_out
    assert first_makespan == second_makespan
