"""Property-based partition-transparency tests.

For any random graph and any random hybrid-ish partition of it, every
algorithm must return exactly the single-machine reference answer.  This
is the library's deepest invariant — the refiners rely on it to move
state around without changing results.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.algorithms.reference import (
    reference_common_neighbors,
    reference_sssp,
    reference_triangle_count,
    reference_wcc,
)
from repro.algorithms.registry import get_algorithm
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_hybrid_partitions(draw):
    """A random graph plus a random *hybrid* partition of it.

    Starts from a random vertex-cut and then duplicates a few random
    edges into extra fragments, producing genuine hybrid structure
    (replicated edges, mixed roles).
    """
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=3 * n,
        )
    )
    graph = Graph(n, edges, directed=draw(st.booleans()))
    k = draw(st.integers(min_value=2, max_value=3))
    assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
    partition = HybridPartition.from_edge_assignment(graph, assignment, k)
    all_edges = list(graph.edges())
    for _ in range(draw(st.integers(0, 5))):
        edge = all_edges[draw(st.integers(0, len(all_edges) - 1))]
        partition.add_edge_to(draw(st.integers(0, k - 1)), edge)
    return graph, partition


@given(random_hybrid_partitions())
@SETTINGS
def test_wcc_transparent(case):
    graph, partition = case
    assert get_algorithm("wcc").run(partition).values == reference_wcc(graph)


@given(random_hybrid_partitions())
@SETTINGS
def test_sssp_transparent(case):
    graph, partition = case
    assert get_algorithm("sssp").run(partition, source=0).values == reference_sssp(
        graph, 0
    )


@given(random_hybrid_partitions())
@SETTINGS
def test_triangle_count_transparent(case):
    graph, partition = case
    assert get_algorithm("tc").run(partition).values == reference_triangle_count(
        graph
    )


@given(random_hybrid_partitions())
@SETTINGS
def test_common_neighbors_transparent(case):
    graph, partition = case
    assert get_algorithm("cn").run(
        partition, return_pairs=True
    ).values == reference_common_neighbors(graph, return_pairs=True)


@given(random_hybrid_partitions(), st.integers(1, 4))
@SETTINGS
def test_pagerank_transparent(case, iterations):
    from repro.algorithms.reference import reference_pagerank

    graph, partition = case
    result = get_algorithm("pr").run(partition, iterations=iterations)
    reference = reference_pagerank(graph, iterations=iterations)
    for v in graph.vertices:
        assert abs(result.values[v] - reference[v]) < 1e-9
