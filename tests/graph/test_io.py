"""Round-trip and format tests for edge-list I/O."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import erdos_renyi
from repro.graph.io import read_edge_list, write_edge_list


def test_round_trip_directed(tmp_path):
    g = erdos_renyi(40, 120, seed=1)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    assert read_edge_list(path) == g


def test_round_trip_undirected(tmp_path):
    g = erdos_renyi(40, 80, directed=False, seed=2)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    loaded = read_edge_list(path)
    assert not loaded.directed
    assert loaded == g


def test_trailing_isolated_vertices_preserved(tmp_path):
    g = Graph(10, [(0, 1)])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    assert read_edge_list(path).num_vertices == 10


def test_headerless_file(tmp_path):
    path = tmp_path / "bare.txt"
    path.write_text("0 1\n2 0\n")
    g = read_edge_list(path)
    assert g.directed
    assert g.num_vertices == 3
    assert g.has_edge(2, 0)


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("\n0 1\n\n1 2\n")
    assert read_edge_list(path).num_edges == 2


def test_malformed_line_reports_line_number(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\n2\n")
    with pytest.raises(ValueError, match="line 2"):
        read_edge_list(path)


def test_non_integer_token_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\n1 x\n")
    with pytest.raises(ValueError, match="line 2.*non-integer"):
        read_edge_list(path)


def test_negative_vertex_id_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 -1\n")
    with pytest.raises(ValueError, match="negative vertex id"):
        read_edge_list(path)


def test_duplicate_edge_rejected(tmp_path):
    path = tmp_path / "dup.txt"
    path.write_text("0 1\n1 2\n0 1\n")
    with pytest.raises(ValueError, match="line 3.*duplicate edge"):
        read_edge_list(path)


def test_duplicate_edge_undirected_reversed(tmp_path):
    # In an undirected file (1, 0) duplicates (0, 1).
    path = tmp_path / "dup.txt"
    path.write_text("# directed=0 num_vertices=3\n0 1\n1 0\n")
    with pytest.raises(ValueError, match="duplicate edge"):
        read_edge_list(path)
    # The same pair is two distinct edges in a directed file.
    ok = tmp_path / "ok.txt"
    ok.write_text("# directed=1 num_vertices=3\n0 1\n1 0\n")
    assert read_edge_list(ok).num_edges == 2


def test_id_beyond_declared_num_vertices_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("# directed=1 num_vertices=2\n0 1\n1 5\n")
    with pytest.raises(ValueError, match="line 3.*num_vertices=2"):
        read_edge_list(path)


def test_malformed_header_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("# directed=yes\n0 1\n")
    with pytest.raises(ValueError, match="line 1.*not an integer"):
        read_edge_list(path)
