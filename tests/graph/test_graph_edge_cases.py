"""Additional graph edge cases and determinism guarantees."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import (
    chung_lu_power_law,
    erdos_renyi,
    rmat,
    road_grid,
    small_world,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: chung_lu_power_law(120, 5.0, seed=s),
            lambda s: erdos_renyi(120, 300, seed=s),
            lambda s: rmat(6, 6.0, seed=s),
            lambda s: road_grid(8, 8, diagonal_prob=0.3, seed=s),
            lambda s: small_world(60, k=4, rewire_prob=0.5, seed=s),
        ],
        ids=["chung_lu", "er", "rmat", "grid", "smallworld"],
    )
    def test_same_seed_same_graph(self, factory):
        assert factory(7) == factory(7)

    def test_different_seed_different_graph(self):
        assert chung_lu_power_law(200, 6.0, seed=1) != chung_lu_power_law(
            200, 6.0, seed=2
        )


class TestGraphViews:
    def test_subgraph_empty_selection(self):
        g = Graph(5, [(0, 1)])
        sub = g.subgraph([])
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_subgraph_preserves_direction(self):
        g = Graph(4, [(3, 1)])
        sub = g.subgraph([3, 1])
        assert sub.directed
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 0)

    def test_as_undirected_merges_antiparallel(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert g.as_undirected().num_edges == 1

    def test_as_undirected_idempotent(self):
        g = Graph(3, [(0, 1)], directed=False)
        assert g.as_undirected() is g

    def test_neighbors_deduplicates_antiparallel(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert g.neighbors(0).tolist() == [1]

    def test_degree_counts_both_directions(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert g.degree(0) == 2
        assert g.incident_edge_count(0) == 2


class TestVertexZeroHub:
    def test_incident_edges_cover_in_and_out(self):
        g = Graph(4, [(0, 1), (2, 0), (3, 0)])
        incident = set(g.incident_edges(0))
        assert incident == {(0, 1), (2, 0), (3, 0)}

    def test_self_loop_incident_once(self):
        g = Graph(1, [(0, 0)])
        assert list(g.incident_edges(0)) == [(0, 0)]
