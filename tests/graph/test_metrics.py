"""Tests for graph-level degree statistics."""

import math

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, erdos_renyi, star_graph
from repro.graph.metrics import (
    average_degree,
    degree_histogram,
    degree_skew,
    density_summary,
    power_law_exponent,
)


def test_average_degree_is_edges_over_vertices():
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    assert average_degree(g) == pytest.approx(0.75)


def test_average_degree_empty():
    assert average_degree(Graph(0, [])) == 0.0


def test_degree_histogram_star():
    g = star_graph(5)
    hist = degree_histogram(g, "in")
    assert hist == {0: 5, 5: 1}
    out_hist = degree_histogram(g, "out")
    assert out_hist == {1: 5, 0: 1}


def test_degree_histogram_rejects_bad_direction():
    with pytest.raises(ValueError):
        degree_histogram(star_graph(3), "sideways")


def test_degree_skew_flat_vs_skewed():
    flat = erdos_renyi(400, 2000, seed=1)
    skewed = chung_lu_power_law(400, 10.0, exponent=2.0, seed=1)
    assert degree_skew(skewed, 0.02) > degree_skew(flat, 0.02)


def test_degree_skew_empty():
    assert degree_skew(Graph(0, [])) == 0.0


def test_power_law_exponent_in_plausible_range():
    g = chung_lu_power_law(2000, 10.0, exponent=2.2, seed=3)
    est = power_law_exponent(g)
    assert 1.5 < est < 3.5


def test_power_law_exponent_degenerate():
    assert math.isnan(power_law_exponent(Graph(3, [(0, 1)])))


def test_density_summary():
    g = Graph(4, [(0, 1), (1, 2)])
    assert density_summary(g) == (4, 2, 0.5)
