"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    chung_lu_power_law,
    clique_collection,
    complete_graph,
    erdos_renyi,
    path_graph,
    rmat,
    road_grid,
    small_world,
    star_graph,
)
from repro.graph.metrics import degree_skew


class TestErdosRenyi:
    def test_edge_count(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_edges == 300
        assert g.num_vertices == 100

    def test_deterministic(self):
        assert erdos_renyi(50, 100, seed=2) == erdos_renyi(50, 100, seed=2)

    def test_caps_at_max_possible(self):
        g = erdos_renyi(4, 1000, directed=False, seed=0)
        assert g.num_edges == 6

    def test_no_self_loops(self):
        g = erdos_renyi(30, 100, seed=3)
        assert all(u != v for u, v in g.edges())


class TestChungLu:
    def test_size_and_skew(self):
        g = chung_lu_power_law(500, 8.0, exponent=2.1, seed=4)
        assert g.num_vertices == 500
        assert g.num_edges == pytest.approx(4000, rel=0.05)
        # Top 1% of vertices should hold far more than 1% of endpoints.
        assert degree_skew(g, 0.01) > 0.05

    def test_vertex_zero_is_hub(self):
        g = chung_lu_power_law(500, 8.0, seed=4)
        hub_degree = g.degree(0)
        median = sorted(g.degree(v) for v in g.vertices)[250]
        assert hub_degree > 5 * max(1, median)

    def test_undirected_variant(self):
        g = chung_lu_power_law(200, 6.0, directed=False, seed=5)
        assert not g.directed

    def test_tiny_graph(self):
        g = chung_lu_power_law(1, 4.0, seed=0)
        assert g.num_vertices == 1
        assert g.num_edges == 0


class TestRmat:
    def test_size(self):
        g = rmat(8, avg_degree=8.0, seed=6)
        assert g.num_vertices == 256
        assert g.num_edges == pytest.approx(2048, rel=0.2)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, a=0.5, b=0.4, c=0.3)


class TestRoadGrid:
    def test_lattice_structure(self):
        g = road_grid(3, 4)
        assert g.num_vertices == 12
        # 3*3 horizontal + 2*4 vertical = 17
        assert g.num_edges == 17
        assert not g.directed

    def test_interior_degree(self):
        g = road_grid(5, 5)
        assert g.degree(12) == 4  # center vertex

    def test_diagonals_add_edges(self):
        base = road_grid(10, 10, diagonal_prob=0.0).num_edges
        extra = road_grid(10, 10, diagonal_prob=1.0, seed=1).num_edges
        assert extra == base + 81


class TestSmallWorld:
    def test_degree_regularity(self):
        g = small_world(50, k=4, rewire_prob=0.0)
        assert g.num_edges == 100
        assert all(g.degree(v) == 4 for v in g.vertices)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            small_world(10, k=3)


class TestFixedTopologies:
    def test_clique_collection(self):
        g = clique_collection([3, 4])
        assert g.num_vertices == 7
        assert g.num_edges == 3 + 6

    def test_clique_collection_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clique_collection([3, 0])

    def test_star(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.in_degree(0) == 5

    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3

    def test_complete(self):
        assert complete_graph(5).num_edges == 10
        assert complete_graph(4, directed=True).num_edges == 12
