"""Unit tests for the core Graph type."""

import numpy as np
import pytest

from repro.graph.digraph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_basic_directed(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.directed

    def test_duplicate_edges_removed(self):
        g = Graph(3, [(0, 1), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_undirected_canonicalizes(self):
        g = Graph(3, [(1, 0), (0, 1)], directed=False)
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_directed_antiparallel_kept(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert g.num_edges == 2

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="endpoint 5 out of range"):
            Graph(2, [(0, 5)])

    def test_negative_endpoint_rejected(self):
        # (0, -1) has a non-negative source, so a src-only check would
        # let it through to die inside np.bincount.
        with pytest.raises(ValueError, match="endpoint -1 out of range"):
            Graph(2, [(0, -1)])
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(-3, 1)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_self_loop_allowed(self):
        g = Graph(2, [(0, 0)])
        assert g.has_edge(0, 0)
        assert g.in_degree(0) == 1
        assert g.out_degree(0) == 1


class TestAdjacency:
    @pytest.fixture()
    def diamond(self):
        return Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_out_neighbors(self, diamond):
        assert set(diamond.out_neighbors(0).tolist()) == {1, 2}
        assert diamond.out_neighbors(3).tolist() == []

    def test_in_neighbors(self, diamond):
        assert set(diamond.in_neighbors(3).tolist()) == {1, 2}
        assert diamond.in_neighbors(0).tolist() == []

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2
        assert diamond.degree(1) == 2  # one in + one out

    def test_degree_vectors(self, diamond):
        assert diamond.out_degrees().tolist() == [2, 1, 1, 0]
        assert diamond.in_degrees().tolist() == [0, 1, 1, 2]

    def test_neighbors_union(self, diamond):
        assert set(diamond.neighbors(1).tolist()) == {0, 3}

    def test_undirected_in_equals_out(self):
        g = Graph(3, [(0, 1), (1, 2)], directed=False)
        assert g.in_degree(1) == g.out_degree(1) == 2


class TestIncidentEdges:
    def test_incident_edges_directed(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 1)])
        incident = set(g.incident_edges(1))
        assert incident == {(0, 1), (1, 2), (2, 1)}
        assert g.incident_edge_count(1) == 3

    def test_incident_count_self_loop_not_double_counted(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert g.incident_edge_count(0) == 2

    def test_incident_edges_undirected_canonical(self):
        g = Graph(3, [(2, 1)], directed=False)
        assert set(g.incident_edges(2)) == {(1, 2)}

    def test_canonical_edge(self):
        d = Graph(3, [(2, 1)])
        u = Graph(3, [(2, 1)], directed=False)
        assert d.canonical_edge(2, 1) == (2, 1)
        assert u.canonical_edge(2, 1) == (1, 2)


class TestDerived:
    def test_as_undirected(self):
        g = Graph(3, [(0, 1), (1, 0), (1, 2)])
        u = g.as_undirected()
        assert not u.directed
        assert u.num_edges == 2

    def test_subgraph_relabels(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        sub = g.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)
        assert sub.num_edges == 1

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 1)])
        c = Graph(3, [(1, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_edge_array_shape(self):
        g = Graph(3, [(0, 1), (1, 2)])
        arr = g.edge_array()
        assert arr.shape == (2, 2)
        assert arr.dtype == np.int64


class TestMutationHooks:
    def test_add_vertex_returns_new_id(self):
        g = Graph(3, [(0, 1)])
        v = g.add_vertex()
        assert v == 3
        assert g.num_vertices == 4
        assert g.incident_edge_count(v) == 0

    def test_add_edge_reports_novelty(self):
        g = Graph(3, [(0, 1)])
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False
        assert g.has_edge(1, 2)
        assert g.num_edges == 2

    def test_undirected_add_edge_canonical_noop(self):
        g = Graph(3, [(0, 1)], directed=False)
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 1

    def test_remove_edge_reports_presence(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.remove_edge(0, 1) is True
        assert g.remove_edge(0, 1) is False
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_out_of_range_endpoints_raise(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.add_edge(-1, 1)
        with pytest.raises(ValueError):
            g.remove_edge(0, 5)

    def test_version_bumps_on_structural_change_only(self):
        g = Graph(3, [(0, 1)])
        v0 = g.version
        g.add_edge(1, 2)
        v1 = g.version
        assert v1 > v0
        # Canonical no-ops leave the version untouched.
        g.add_edge(1, 2)
        g.remove_edge(0, 2)
        assert g.version == v1
        g.remove_edge(1, 2)
        assert g.version > v1
        g.add_vertex()
        assert g.version > v1 + 1 or g.version != v1

    def test_arrays_refresh_after_mutation(self):
        g = Graph(3, [(0, 1)])
        before = g.edge_array().copy()
        assert g.out_degree(1) == 0
        g.add_edge(1, 2)
        g.add_vertex()
        arr = g.edge_array()
        assert arr.shape == (2, 2)
        assert set(map(tuple, arr.tolist())) == {(0, 1), (1, 2)}
        assert g.out_degree(1) == 1
        assert g.in_degree(2) == 1
        assert list(g.neighbors(1)) == [0, 2]
        assert g.out_degrees().shape == (4,)
        assert before.shape == (1, 2)

    def test_mutated_graph_equals_fresh_construction(self):
        g = Graph(3, [(0, 1), (1, 2)])
        g.remove_edge(1, 2)
        g.add_vertex()
        g.add_edge(2, 3)
        assert g == Graph(4, [(0, 1), (2, 3)])
