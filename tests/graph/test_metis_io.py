"""Tests for METIS/Chaco format graph I/O."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import erdos_renyi
from repro.graph.io import read_metis, write_metis


def test_round_trip(tmp_path):
    g = erdos_renyi(30, 60, directed=False, seed=3)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    assert read_metis(path) == g


def test_directed_graph_written_as_undirected(tmp_path):
    g = Graph(3, [(0, 1), (1, 0), (1, 2)])
    path = tmp_path / "g.metis"
    write_metis(g, path)
    loaded = read_metis(path)
    assert not loaded.directed
    assert loaded.num_edges == 2


def test_self_loops_dropped(tmp_path):
    g = Graph(2, [(0, 0), (0, 1)], directed=False)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    assert read_metis(path).num_edges == 1


def test_format_shape(tmp_path):
    g = Graph(3, [(0, 1), (1, 2)], directed=False)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    lines = path.read_text().splitlines()
    assert lines[0] == "3 2"
    assert lines[1] == "2"       # vertex 1's neighbor: vertex 2 (1-indexed)
    assert lines[2] == "1 3"
    assert lines[3] == "2"


def test_isolated_vertices_round_trip(tmp_path):
    # Isolated vertices produce blank adjacency lines, which must not be
    # dropped on read (regression test).
    g = Graph(4, [(0, 3)], directed=False)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    assert read_metis(path) == g


def test_comment_lines_skipped(tmp_path):
    path = tmp_path / "g.metis"
    path.write_text("% comment\n2 1\n2\n1\n")
    g = read_metis(path)
    assert g.num_edges == 1


def test_header_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("2 5\n2\n1\n")
    with pytest.raises(ValueError, match="declares 5 edges"):
        read_metis(path)


def test_out_of_range_neighbor_rejected(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("2 1\n9\n1\n")
    with pytest.raises(ValueError, match="out of range"):
        read_metis(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("3 1\n2\n")
    with pytest.raises(ValueError, match="adjacency lines"):
        read_metis(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.metis"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_metis(path)
