"""Tests for the composite partition HP(n, k) (Section 6.1)."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.composite import CompositePartition
from repro.partition.hybrid import HybridPartition

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture()
def two_partitions(power_graph):
    return {
        "a": make_edge_cut(power_graph, 3, seed=1),
        "b": make_edge_cut(power_graph, 3, seed=2),
    }


class TestConstruction:
    def test_identical_partitions_share_everything(self, power_graph):
        p = make_edge_cut(power_graph, 3, seed=5)
        composite = CompositePartition({"x": p, "y": p.copy()})
        assert composite.core_fraction() == pytest.approx(1.0)
        # f_c equals a single partition's storage ratio.
        single = (p.total_vertex_copies() + p.total_edge_copies()) / (
            power_graph.num_vertices + power_graph.num_edges
        )
        assert composite.composite_replication_ratio() == pytest.approx(single)

    def test_disjoint_partitions_share_little(self, two_partitions):
        composite = CompositePartition(two_partitions)
        assert 0.0 < composite.core_fraction() < 1.0
        assert composite.space_saving() >= 0.0

    def test_requires_same_graph(self, power_graph, undirected_graph):
        a = make_edge_cut(power_graph, 3)
        b = make_edge_cut(undirected_graph, 3)
        with pytest.raises(ValueError):
            CompositePartition({"a": a, "b": b})

    def test_requires_same_fragment_count(self, power_graph):
        with pytest.raises(ValueError):
            CompositePartition(
                {"a": make_edge_cut(power_graph, 3), "b": make_edge_cut(power_graph, 4)}
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositePartition({})

    def test_partition_for_round_trip(self, two_partitions):
        composite = CompositePartition(two_partitions)
        assert composite.partition_for("a") is two_partitions["a"]


class TestStorageAccounting:
    def test_fc_below_separate(self, two_partitions):
        composite = CompositePartition(two_partitions)
        assert (
            composite.composite_replication_ratio()
            <= composite.separate_storage_ratio() + 1e-9
        )

    def test_storage_decomposition_consistent(self, two_partitions):
        composite = CompositePartition(two_partitions)
        for comp, frag_a, frag_b in zip(
            composite.composite_fragments,
            two_partitions["a"].fragments,
            two_partitions["b"].fragments,
        ):
            # core + residual_j reconstructs partition j's fragment.
            assert comp.core_edges | comp.residual_edges[0] == set(frag_a.edges())
            assert comp.core_edges | comp.residual_edges[1] == set(frag_b.edges())
            assert comp.core_vertices | comp.residual_vertices[0] == set(
                frag_a.vertices()
            )


class TestEdgeIndex:
    def test_locate_core_edge(self, power_graph):
        p = make_edge_cut(power_graph, 3, seed=5)
        composite = CompositePartition({"x": p, "y": p.copy()})
        edge = next(iter(power_graph.edges()))
        host = next(
            c for c in composite.composite_fragments if edge in c.edge_index
        )
        in_core, residuals = host.locate_edge(edge)
        assert in_core and residuals == set()

    def test_locate_residual_edge(self, two_partitions):
        composite = CompositePartition(two_partitions)
        for comp in composite.composite_fragments:
            for j, edges in enumerate(comp.residual_edges):
                for edge in edges:
                    in_core, residuals = comp.locate_edge(edge)
                    if not in_core:
                        assert j in residuals

    def test_locate_absent_edge(self, two_partitions):
        composite = CompositePartition(two_partitions)
        assert composite.composite_fragments[0].locate_edge((99999, 0)) == (
            False,
            set(),
        )


class TestCoherence:
    def test_delete_edge_removes_all_copies(self, two_partitions):
        composite = CompositePartition(two_partitions)
        edge = next(iter(composite.graph.edges()))
        removed = composite.delete_edge(edge)
        assert removed >= 1
        for comp in composite.composite_fragments:
            assert edge not in comp.edge_index
            assert edge not in comp.core_edges
            for residual in comp.residual_edges:
                assert edge not in residual

    def test_delete_is_idempotent(self, two_partitions):
        composite = CompositePartition(two_partitions)
        edge = next(iter(composite.graph.edges()))
        composite.delete_edge(edge)
        assert composite.delete_edge(edge) == 0

    def test_insert_agreeing_edge_stored_once(self, two_partitions):
        composite = CompositePartition(two_partitions)
        written = composite.insert_edge((7, 3), {"a": 1, "b": 1})
        assert written == 1
        in_core, residuals = composite.composite_fragments[1].locate_edge((7, 3))
        assert in_core and not residuals

    def test_insert_disagreeing_edge_stored_per_partition(self, two_partitions):
        composite = CompositePartition(two_partitions)
        written = composite.insert_edge((7, 3), {"a": 0, "b": 2})
        assert written == 2
        assert (7, 3) in composite.composite_fragments[0].residual_edges[0]
        assert (7, 3) in composite.composite_fragments[2].residual_edges[1]

    def test_insert_requires_all_targets(self, two_partitions):
        composite = CompositePartition(two_partitions)
        with pytest.raises(ValueError):
            composite.insert_edge((7, 3), {"a": 0})

    def test_index_size_positive(self, two_partitions):
        composite = CompositePartition(two_partitions)
        assert composite.index_size() > 0
