"""Unit tests for HybridPartition: construction, placement, mutations."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition, NodeRole
from repro.partition.validation import check_partition, is_edge_cut, is_vertex_cut

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture()
def tiny():
    # 0 -> 1 -> 2, 0 -> 2
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


class TestConstructors:
    def test_from_vertex_assignment_is_edge_cut(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 0, 1], 2)
        check_partition(p)
        assert is_edge_cut(p)
        # Vertex 2's fragment holds all its incident edges.
        assert p.fragments[1].incident_count(2) == 2

    def test_from_vertex_assignment_replicates_border(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 0, 1], 2)
        # 2 appears in F0 (dummy, via edges 1->2 and 0->2) and F1 (home).
        assert p.placement(2) == frozenset({0, 1})
        assert p.mirrors(2) == 1

    def test_from_edge_assignment_is_vertex_cut(self, tiny):
        p = HybridPartition.from_edge_assignment(
            tiny, {(0, 1): 0, (1, 2): 1, (0, 2): 1}, 2
        )
        check_partition(p)
        assert is_vertex_cut(p)

    def test_isolated_vertices_get_homes(self):
        g = Graph(4, [(0, 1)])
        p = HybridPartition.from_edge_assignment(g, {(0, 1): 0}, 2)
        check_partition(p)
        assert p.placement(3)

    def test_bad_assignment_rejected(self, tiny):
        with pytest.raises(ValueError):
            HybridPartition.from_vertex_assignment(tiny, [0, 0, 5], 2)
        with pytest.raises(ValueError):
            HybridPartition.from_edge_assignment(tiny, {(0, 1): 9}, 2)

    def test_zero_fragments_rejected(self, tiny):
        with pytest.raises(ValueError):
            HybridPartition(tiny, 0)


class TestRoles:
    def test_ecut_vertex_single_home(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 0, 1], 2)
        assert p.is_ecut_vertex(0)
        assert p.role(0, 0) is NodeRole.ECUT

    def test_dummy_copy_of_ecut_vertex(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 0, 1], 2)
        # Vertex 2's home is F1; the copy in F0 is a dummy.
        assert p.role(2, 1) is NodeRole.ECUT
        assert p.role(2, 0) is NodeRole.DUMMY

    def test_vcut_roles(self, tiny):
        p = HybridPartition.from_edge_assignment(
            tiny, {(0, 1): 0, (0, 2): 1, (1, 2): 0}, 2
        )
        # Vertex 0 has edges split between F0 and F1.
        assert p.is_vcut_vertex(0)
        assert p.role(0, 0) is NodeRole.VCUT
        assert p.role(0, 1) is NodeRole.VCUT

    def test_isolated_vertex_is_ecut(self):
        g = Graph(2, [])
        p = HybridPartition(g, 2)
        p.add_vertex_to(0, 0)
        p.add_vertex_to(1, 1)
        assert p.is_ecut_vertex(0)
        assert p.role(0, 0) is NodeRole.ECUT

    def test_role_of_absent_copy_raises(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 0, 0], 2)
        with pytest.raises(KeyError):
            p.role(0, 1)

    def test_designated_home_prefers_master(self, tiny):
        p = HybridPartition(tiny, 2)
        for fid in (0, 1):
            for e in tiny.edges():
                p.add_edge_to(fid, e)  # fully replicated: both full
        assert p.full_fragments(0) == frozenset({0, 1})
        p.set_master(0, 1)
        assert p.designated_home(0) == 1
        assert p.role(0, 0) is NodeRole.DUMMY


class TestMutations:
    def test_add_edge_maintains_placement(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        assert p.placement(0) == frozenset({0})
        assert p.fragments[0].has_edge((0, 1))

    def test_add_nonexistent_edge_rejected(self, tiny):
        p = HybridPartition(tiny, 2)
        with pytest.raises(ValueError):
            p.add_edge_to(0, (2, 0))

    def test_remove_edge_prunes_replicated_endpoint(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        p.add_edge_to(1, (0, 1))
        p.remove_edge_from(1, (0, 1))
        # Copies at F1 had no other edges and exist at F0 too -> pruned.
        assert p.placement(0) == frozenset({0})
        assert p.placement(1) == frozenset({0})

    def test_remove_edge_keeps_last_copy(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        p.remove_edge_from(0, (0, 1))
        # Sole copies of 0 and 1 survive as edge-free vertices.
        assert p.placement(0) == frozenset({0})

    def test_master_reassigned_on_removal(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        p.add_edge_to(1, (0, 1))
        p.set_master(0, 1)
        p.remove_edge_from(1, (0, 1))
        assert p.master(0) == 0

    def test_set_master_requires_host(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        with pytest.raises(ValueError):
            p.set_master(0, 1)

    def test_fullness_tracking(self, tiny):
        p = HybridPartition(tiny, 2)
        p.add_edge_to(0, (0, 1))
        assert p.full_fragments(0) == frozenset()
        p.add_edge_to(0, (0, 2))
        assert p.full_fragments(0) == frozenset({0})
        p.remove_edge_from(0, (0, 2))
        assert p.full_fragments(0) == frozenset()

    def test_listener_fires_on_mutation(self, tiny):
        p = HybridPartition(tiny, 2)
        touched = []
        p.add_listener(touched.append)
        p.add_edge_to(0, (0, 1))
        assert set(touched) == {0, 1}
        p.remove_listener(touched.append)
        p.add_edge_to(0, (1, 2))
        assert set(touched) == {0, 1}


class TestAggregates:
    def test_copy_is_deep(self, power_graph):
        p = make_edge_cut(power_graph, 4)
        clone = p.copy()
        before = clone.total_edge_copies()
        edge = next(iter(power_graph.edges()))
        host = next(iter(p.placement(edge[0])))
        p.remove_edge_from(host, edge)
        assert clone.total_edge_copies() == before
        check_partition(clone)

    def test_copy_preserves_masters(self, power_graph):
        p = make_vertex_cut(power_graph, 4)
        for v, hosts in list(p.vertex_fragments())[:10]:
            if len(hosts) > 1:
                p.set_master(v, max(hosts))
        clone = p.copy()
        for v, _hosts in p.vertex_fragments():
            assert clone.master(v) == p.master(v)

    def test_totals(self, tiny):
        p = HybridPartition.from_vertex_assignment(tiny, [0, 1, 1], 2)
        assert p.total_vertex_copies() >= tiny.num_vertices
        assert p.total_edge_copies() >= tiny.num_edges
