"""Unit tests for Fragment bookkeeping."""

import pytest

from repro.partition.fragment import Fragment


@pytest.fixture()
def frag():
    return Fragment(0, directed=True)


class TestVertexOps:
    def test_add_vertex(self, frag):
        assert frag._add_vertex(3)
        assert frag.has_vertex(3)
        assert not frag._add_vertex(3)  # idempotent
        assert frag.num_vertices == 1

    def test_remove_edge_free_vertex(self, frag):
        frag._add_vertex(3)
        frag._remove_vertex(3)
        assert not frag.has_vertex(3)

    def test_remove_vertex_with_edges_rejected(self, frag):
        frag._add_edge((1, 2))
        with pytest.raises(ValueError):
            frag._remove_vertex(1)

    def test_remove_absent_vertex_is_noop(self, frag):
        frag._remove_vertex(42)


class TestEdgeOps:
    def test_add_edge_creates_endpoints(self, frag):
        assert frag._add_edge((1, 2))
        assert frag.has_vertex(1) and frag.has_vertex(2)
        assert frag.num_edges == 1

    def test_add_edge_idempotent(self, frag):
        frag._add_edge((1, 2))
        assert not frag._add_edge((1, 2))
        assert frag.num_edges == 1

    def test_degrees_directed(self, frag):
        frag._add_edge((1, 2))
        frag._add_edge((3, 2))
        assert frag.local_out_degree(1) == 1
        assert frag.local_in_degree(2) == 2
        assert frag.local_in_degree(1) == 0

    def test_degrees_undirected(self):
        f = Fragment(0, directed=False)
        f._add_edge((1, 2))
        assert f.local_in_degree(1) == f.local_out_degree(1) == 1
        assert f.local_in_degree(2) == 1

    def test_self_loop_degrees(self, frag):
        frag._add_edge((1, 1))
        assert frag.local_in_degree(1) == 1
        assert frag.local_out_degree(1) == 1
        assert frag.incident_count(1) == 1

    def test_remove_edge_updates_degrees(self, frag):
        frag._add_edge((1, 2))
        assert frag._remove_edge((1, 2))
        assert frag.local_out_degree(1) == 0
        assert frag.incident_count(2) == 0
        assert frag.has_vertex(1)  # endpoints stay

    def test_remove_absent_edge(self, frag):
        assert not frag._remove_edge((5, 6))


class TestNeighborIteration:
    def test_local_neighbors_directed(self, frag):
        frag._add_edge((1, 2))
        frag._add_edge((2, 3))
        assert list(frag.local_out_neighbors(2)) == [3]
        assert list(frag.local_in_neighbors(2)) == [1]

    def test_local_neighbors_undirected(self):
        f = Fragment(0, directed=False)
        f._add_edge((1, 2))
        f._add_edge((2, 3))
        assert set(f.local_out_neighbors(2)) == {1, 3}
        assert set(f.local_in_neighbors(2)) == {1, 3}

    def test_incident_returns_frozen(self, frag):
        frag._add_edge((1, 2))
        edges = frag.incident(1)
        assert edges == frozenset({(1, 2)})
        assert frag.incident(99) == frozenset()
