"""Tests for structural invariant checking."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.partition.validation import (
    PartitionInvariantError,
    check_partition,
    fragment_role_counts,
    is_edge_cut,
    is_vertex_cut,
)

from tests.conftest import make_edge_cut, make_vertex_cut


def test_valid_partitions_pass(power_graph):
    check_partition(make_edge_cut(power_graph, 4))
    check_partition(make_vertex_cut(power_graph, 4))


def test_missing_vertex_detected():
    g = Graph(3, [(0, 1)])
    p = HybridPartition(g, 2)
    p.add_edge_to(0, (0, 1))
    # Vertex 2 never placed.
    with pytest.raises(PartitionInvariantError, match="not covered"):
        check_partition(p)


def test_missing_edge_detected():
    g = Graph(2, [(0, 1)])
    p = HybridPartition(g, 2)
    p.add_vertex_to(0, 0)
    p.add_vertex_to(1, 1)
    with pytest.raises(PartitionInvariantError, match="edges not covered"):
        check_partition(p)


def test_cut_classification(power_graph):
    ec = make_edge_cut(power_graph, 4)
    vc = make_vertex_cut(power_graph, 4)
    assert is_edge_cut(ec)
    assert not is_vertex_cut(ec)
    assert is_vertex_cut(vc)


def test_hybrid_is_neither():
    g = Graph(3, [(0, 1), (1, 2)])
    p = HybridPartition(g, 2)
    p.add_edge_to(0, (0, 1))
    p.add_edge_to(1, (0, 1))  # duplicated edge -> not vertex-cut
    p.add_edge_to(0, (1, 2))
    p.add_edge_to(1, (1, 2))
    p.remove_edge_from(0, (1, 2))
    # Split vertex structure: make 1 v-cut by unbalancing copies.
    p.remove_edge_from(1, (0, 1))
    check_partition(p)
    assert not is_vertex_cut(p) or not is_edge_cut(p)


def test_role_counts_sum_to_fragment_sizes(power_graph):
    p = make_edge_cut(power_graph, 4)
    counts = fragment_role_counts(p)
    for fragment, row in zip(p.fragments, counts):
        assert sum(row.values()) == fragment.num_vertices
        assert row["v-cut"] == 0  # pure edge-cut has no v-cut copies
