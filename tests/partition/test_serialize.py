"""Tests for partition save/load."""

import pytest

from repro.graph.generators import chung_lu_power_law
from repro.partition.composite import CompositePartition
from repro.partition.serialize import (
    load_composite,
    load_partition,
    partition_from_dict,
    partition_to_dict,
    save_composite,
    save_partition,
)
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut


def _assert_same_partition(a, b):
    assert a.num_fragments == b.num_fragments
    for fa, fb in zip(a.fragments, b.fragments):
        assert set(fa.vertices()) == set(fb.vertices())
        assert set(fa.edges()) == set(fb.edges())
    for v, _hosts in a.vertex_fragments():
        assert a.master(v) == b.master(v)


def test_round_trip_edge_cut(tmp_path, power_graph):
    p = make_edge_cut(power_graph, 4, seed=2)
    path = tmp_path / "p.json"
    save_partition(p, path)
    loaded = load_partition(path, power_graph)
    check_partition(loaded)
    _assert_same_partition(p, loaded)


def test_round_trip_vertex_cut_with_masters(tmp_path, power_graph):
    p = make_vertex_cut(power_graph, 4, seed=2)
    for v, hosts in list(p.vertex_fragments())[:20]:
        if len(hosts) > 1:
            p.set_master(v, max(hosts))
    path = tmp_path / "p.json"
    save_partition(p, path)
    _assert_same_partition(p, load_partition(path, power_graph))


def test_round_trip_refined_hybrid(tmp_path, power_graph):
    from repro.core.e2h import E2H
    from repro.costmodel.library import builtin_cost_model

    p = E2H(builtin_cost_model("cn")).refine(make_edge_cut(power_graph, 4))
    path = tmp_path / "p.json"
    save_partition(p, path)
    loaded = load_partition(path, power_graph)
    check_partition(loaded)
    _assert_same_partition(p, loaded)


def test_wrong_graph_rejected(tmp_path, power_graph, undirected_graph):
    p = make_edge_cut(power_graph, 4)
    path = tmp_path / "p.json"
    save_partition(p, path)
    with pytest.raises(ValueError, match="does not match"):
        load_partition(path, undirected_graph)


def test_wrong_version_rejected(power_graph):
    p = make_edge_cut(power_graph, 4)
    data = partition_to_dict(p)
    data["version"] = 99
    with pytest.raises(ValueError, match="unsupported"):
        partition_from_dict(data, power_graph)


def test_composite_round_trip(tmp_path, power_graph):
    composite = CompositePartition(
        {
            "a": make_edge_cut(power_graph, 3, seed=1),
            "b": make_edge_cut(power_graph, 3, seed=2),
        }
    )
    path = tmp_path / "c.json"
    save_composite(composite, path)
    loaded = load_composite(path, power_graph)
    assert loaded.names == composite.names
    assert loaded.composite_replication_ratio() == pytest.approx(
        composite.composite_replication_ratio()
    )
    for name in composite.names:
        _assert_same_partition(
            composite.partition_for(name), loaded.partition_for(name)
        )
