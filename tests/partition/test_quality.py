"""Tests for replication ratios and balance factors (Section 2)."""

import pytest

from repro.costmodel.model import constant_cost_model
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.partition.quality import (
    cost_balance_factor,
    edge_balance_factor,
    edge_replication_ratio,
    parallel_cost,
    vertex_balance_factor,
    vertex_replication_ratio,
)

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture()
def chain():
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


def test_vertex_cut_has_unit_edge_replication(power_graph):
    p = make_vertex_cut(power_graph, 4)
    assert edge_replication_ratio(p) == pytest.approx(1.0)
    assert vertex_replication_ratio(p) >= 1.0


def test_edge_cut_replicates_edges(power_graph):
    p = make_edge_cut(power_graph, 4)
    assert edge_replication_ratio(p) > 1.0


def test_balance_factor_zero_when_even(chain):
    # F0 = {0,1} + dummy 2; F1 = {2,3} + dummy 1 -> both hold 3 copies.
    p = HybridPartition.from_vertex_assignment(chain, [0, 0, 1, 1], 2)
    assert vertex_balance_factor(p) == pytest.approx(0.0)
    p2 = HybridPartition.from_edge_assignment(
        chain, {(0, 1): 0, (1, 2): 0, (2, 3): 1}, 2
    )
    assert edge_balance_factor(p2) == pytest.approx(1 / 3)


def test_balance_factor_definition():
    # max/avg - 1: sizes 3 and 1 -> avg 2, lambda = 0.5
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    p = HybridPartition.from_edge_assignment(
        g, {(0, 1): 0, (1, 2): 0, (2, 3): 0}, 2
    )
    assert edge_balance_factor(p) == pytest.approx(1.0)  # 3 vs 0: 3/1.5-1


def test_cost_balance_factor_uses_model(chain):
    p = HybridPartition.from_vertex_assignment(chain, [0, 0, 0, 1], 2)
    model = constant_cost_model()
    lam = cost_balance_factor(p, model)
    # Fragment 0 bears 3 units, fragment 1 bears 1 (+ dummies bear none).
    assert lam == pytest.approx(0.5)


def test_parallel_cost_is_max(chain):
    p = HybridPartition.from_vertex_assignment(chain, [0, 0, 0, 1], 2)
    model = constant_cost_model()
    assert parallel_cost(p, model) == pytest.approx(3.0)


def test_empty_graph_ratios():
    g = Graph(0, [])
    p = HybridPartition(g, 2)
    assert vertex_replication_ratio(p) == 1.0
    assert edge_replication_ratio(p) == 1.0
    assert vertex_balance_factor(p) == 0.0


def test_deviation_degenerate_inputs():
    from repro.partition.quality import _deviation

    assert _deviation([]) == 0.0
    assert _deviation([0, 0, 0]) == 0.0  # all-empty fragments: balanced
    assert _deviation([2, 2, 2]) == 0.0


def test_deviation_rejects_negative_sizes():
    from repro.partition.quality import _deviation

    # [-5, 5] must not report "perfectly balanced" (total == 0 path).
    with pytest.raises(ValueError, match="negative"):
        _deviation([-5, 5])
    with pytest.raises(ValueError, match="negative"):
        _deviation([-1, 3])


def test_deviation_rejects_non_finite_sizes():
    from repro.partition.quality import _deviation

    with pytest.raises(ValueError, match="non-finite"):
        _deviation([float("nan"), 1.0])
    with pytest.raises(ValueError, match="non-finite"):
        _deviation([float("inf"), 1.0])


def test_cost_balance_factor_rejects_broken_model(chain):
    p = HybridPartition.from_vertex_assignment(chain, [0, 0, 0, 1], 2)

    class BrokenModel:
        def fragment_cost(self, partition, fid):
            return float("nan")

    with pytest.raises(ValueError, match="non-finite"):
        cost_balance_factor(p, BrokenModel())
