"""Tests for the RefinementGuard harness: cadence, budgets, rollback."""

import pytest

from repro.integrity.chaos import ChaosPlan
from repro.integrity.guard import (
    GuardConfig,
    RefinementBudgetExceeded,
    RefinementGuard,
)
from repro.partition.serialize import partition_to_dict
from repro.partition.validation import collect_violations

from tests.conftest import make_edge_cut


def test_config_validation():
    with pytest.raises(ValueError, match="check_interval"):
        GuardConfig(check_interval=0)
    with pytest.raises(ValueError, match="snapshot_interval"):
        GuardConfig(snapshot_interval=0)
    with pytest.raises(ValueError, match="max_steps"):
        GuardConfig(max_steps=0)
    with pytest.raises(ValueError, match="max_seconds"):
        GuardConfig(max_seconds=0.0)


def test_check_cadence(power_graph):
    partition = make_edge_cut(power_graph, 4)
    guard = RefinementGuard(partition, GuardConfig(check_interval=4))
    for _ in range(10):
        guard.step()
    assert guard.stats.steps == 10
    assert guard.stats.checks == 2  # at steps 4 and 8
    guard.finish()
    assert guard.stats.checks == 3  # finish always runs a full check


def test_chaos_detect_and_repair(power_graph):
    partition = make_edge_cut(power_graph, 4)
    config = GuardConfig(
        check_interval=2,
        chaos=ChaosPlan(seed=9, corrupt_rate=0.8),
    )
    guard = RefinementGuard(partition, config)
    for _ in range(40):
        guard.step()
    stats = guard.finish()
    assert stats.corruptions_injected > 0
    assert stats.repairs > 0
    assert stats.unrepaired_violations == 0
    assert collect_violations(partition) == []


def test_lost_edges_force_rollback(power_graph):
    partition = make_edge_cut(power_graph, 4)
    config = GuardConfig(
        check_interval=1,
        chaos=ChaosPlan(seed=9, corrupt_rate=1.0, kinds=("edges",)),
    )
    guard = RefinementGuard(partition, config)
    for _ in range(5):
        guard.step()
    stats = guard.finish()
    assert stats.rollbacks > 0
    assert stats.unrepaired_violations == 0
    assert collect_violations(partition) == []


def test_step_budget_raises(power_graph):
    partition = make_edge_cut(power_graph, 4)
    guard = RefinementGuard(partition, GuardConfig(max_steps=3))
    guard.step()
    guard.step()
    with pytest.raises(RefinementBudgetExceeded):
        guard.step()


def test_wall_clock_budget_raises(power_graph):
    partition = make_edge_cut(power_graph, 4)
    guard = RefinementGuard(partition, GuardConfig(max_seconds=1e-9))
    with pytest.raises(RefinementBudgetExceeded):
        guard.step()


def test_early_stop_restores_best_snapshot(power_graph):
    partition = make_edge_cut(power_graph, 4)
    best_state = partition_to_dict(partition)
    costs = iter([1.0, 5.0, 5.0, 5.0, 5.0])
    guard = RefinementGuard(
        partition,
        GuardConfig(check_interval=1),
        cost_fn=lambda: next(costs),
    )
    # Make a real move so the current state differs from the best one.
    v = next(
        v for v, hosts in partition.vertex_fragments() if len(hosts) > 1
    )
    other = next(
        fid for fid in sorted(partition.placement(v)) if fid != partition.master(v)
    )
    partition.set_master(v, other)
    guard.step()  # clean check at cost 5.0: snapshots, best stays at 1.0
    assert partition_to_dict(partition) != best_state
    guard.finish(early_stopped=True)
    assert guard.stats.early_stopped
    assert partition_to_dict(partition) == best_state


def test_no_restore_without_early_stop(power_graph):
    partition = make_edge_cut(power_graph, 4)
    costs = iter([1.0, 5.0, 5.0, 5.0, 5.0])
    guard = RefinementGuard(
        partition,
        GuardConfig(check_interval=1),
        cost_fn=lambda: next(costs),
    )
    v = next(
        v for v, hosts in partition.vertex_fragments() if len(hosts) > 1
    )
    other = next(
        fid for fid in sorted(partition.placement(v)) if fid != partition.master(v)
    )
    partition.set_master(v, other)
    guard.step()
    moved_state = partition_to_dict(partition)
    guard.finish()  # normal completion keeps the refiner's final state
    assert partition_to_dict(partition) == moved_state


def test_finish_is_idempotent(power_graph):
    partition = make_edge_cut(power_graph, 4)
    guard = RefinementGuard(partition, GuardConfig())
    guard.step()
    stats = guard.finish()
    checks = stats.checks
    assert guard.finish() is stats
    assert stats.checks == checks


def test_guard_without_chaos_only_reads(power_graph):
    partition = make_edge_cut(power_graph, 4)
    before = partition_to_dict(partition)
    guard = RefinementGuard(partition, GuardConfig(check_interval=1))
    for _ in range(10):
        guard.step()
    guard.finish()
    assert partition_to_dict(partition) == before
    assert guard.stats.repairs == 0
    assert guard.stats.rollbacks == 0
