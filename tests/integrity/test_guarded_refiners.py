"""Acceptance tests for the guarded refinement pipeline.

The two contract points of DESIGN.md §6:

* **Bit-identity** — guards at any cadence with no chaos never change a
  refiner's output partition or reported costs;
* **Chaos survival** — under deterministic corruption of placements,
  masters, and role tags (≥ 5 seeds), every guarded refiner returns a
  partition passing ``check_partition`` with zero unrepaired
  violations, and ``GuardedCostModel`` keeps NaN/inf predictions away
  from move selection.

``REPRO_CHAOS_SEED`` (set by the CI chaos-smoke matrix) adds an extra
seed to the sweep.
"""

import math
import os

import pytest

from repro.core.e2h import E2H
from repro.core.me2h import ME2H
from repro.core.mv2h import MV2H
from repro.core.parallel import ParE2H, ParV2H
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import CostModel
from repro.graph.generators import chung_lu_power_law
from repro.integrity.chaos import DEFAULT_KINDS, ChaosPlan
from repro.integrity.guard import GuardConfig
from repro.partition.hybrid import HybridPartition
from repro.partition.serialize import partition_to_dict
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut

SEEDS = (3, 5, 7, 11, 13) + (
    (int(os.environ["REPRO_CHAOS_SEED"]),)
    if os.environ.get("REPRO_CHAOS_SEED")
    else ()
)

COMPOSITE_MODELS = {
    "pr": builtin_cost_model("pr"),
    "wcc": builtin_cost_model("wcc"),
}


@pytest.fixture(scope="module")
def small_graph():
    return chung_lu_power_law(150, 5.0, exponent=2.1, directed=True, seed=4)


def chaos_config(seed, kinds=DEFAULT_KINDS, rate=0.3):
    return GuardConfig(
        check_interval=4,
        chaos=ChaosPlan(seed=seed, corrupt_rate=rate, kinds=kinds),
    )


# ----------------------------------------------------------------------
# Bit-identity: guards without chaos never change the output
# ----------------------------------------------------------------------
@pytest.mark.parametrize("interval", [1, 64])
def test_e2h_guarded_output_bit_identical(power_graph, interval):
    model = builtin_cost_model("pr")
    plain = E2H(model)
    refined = plain.refine(make_edge_cut(power_graph, 4))
    guarded = E2H(model, guard_config=GuardConfig(check_interval=interval))
    refined_guarded = guarded.refine(make_edge_cut(power_graph, 4))
    assert partition_to_dict(refined_guarded) == partition_to_dict(refined)
    assert guarded.last_stats.cost_after == plain.last_stats.cost_after
    assert guarded.last_stats.guard.checks > 0


def test_v2h_guarded_output_bit_identical(power_graph):
    model = builtin_cost_model("tc")
    plain = V2H(model).refine(make_vertex_cut(power_graph, 4))
    guarded = V2H(model, guard_config=GuardConfig()).refine(
        make_vertex_cut(power_graph, 4)
    )
    assert partition_to_dict(guarded) == partition_to_dict(plain)


def test_me2h_guarded_output_bit_identical(small_graph):
    plain = ME2H(COMPOSITE_MODELS).refine(make_edge_cut(small_graph, 4))
    guarded = ME2H(COMPOSITE_MODELS, guard_config=GuardConfig()).refine(
        make_edge_cut(small_graph, 4)
    )
    for name in COMPOSITE_MODELS:
        assert partition_to_dict(guarded.partition_for(name)) == partition_to_dict(
            plain.partition_for(name)
        )


def test_mv2h_guarded_output_bit_identical(small_graph):
    plain = MV2H(COMPOSITE_MODELS).refine(make_vertex_cut(small_graph, 4))
    guarded = MV2H(COMPOSITE_MODELS, guard_config=GuardConfig()).refine(
        make_vertex_cut(small_graph, 4)
    )
    for name in COMPOSITE_MODELS:
        assert partition_to_dict(guarded.partition_for(name)) == partition_to_dict(
            plain.partition_for(name)
        )


def test_parallel_refiners_guarded_output_bit_identical(small_graph):
    model = builtin_cost_model("pr")
    plain_e, _ = ParE2H(model).refine(make_edge_cut(small_graph, 4))
    guarded_e, profile = ParE2H(model, guard_config=GuardConfig()).refine(
        make_edge_cut(small_graph, 4)
    )
    assert partition_to_dict(guarded_e) == partition_to_dict(plain_e)
    assert profile.stats.guard is not None

    plain_v, _ = ParV2H(model).refine(make_vertex_cut(small_graph, 4))
    guarded_v, _ = ParV2H(model, guard_config=GuardConfig()).refine(
        make_vertex_cut(small_graph, 4)
    )
    assert partition_to_dict(guarded_v) == partition_to_dict(plain_v)


# ----------------------------------------------------------------------
# Chaos survival: ≥ 5 seeds × corruption kinds, every refiner
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_e2h_survives_chaos(small_graph, seed):
    refiner = E2H(builtin_cost_model("pr"), guard_config=chaos_config(seed))
    refined = refiner.refine(make_edge_cut(small_graph, 4))
    check_partition(refined)
    assert refiner.last_stats.guard.unrepaired_violations == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_v2h_survives_chaos(small_graph, seed):
    refiner = V2H(builtin_cost_model("tc"), guard_config=chaos_config(seed))
    refined = refiner.refine(make_vertex_cut(small_graph, 4))
    check_partition(refined)
    assert refiner.last_stats.guard.unrepaired_violations == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_me2h_survives_chaos(small_graph, seed):
    refiner = ME2H(COMPOSITE_MODELS, guard_config=chaos_config(seed))
    composite = refiner.refine(make_edge_cut(small_graph, 4))
    for name in COMPOSITE_MODELS:
        check_partition(composite.partition_for(name))
        assert refiner.last_stats.guard[name].unrepaired_violations == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_mv2h_survives_chaos(small_graph, seed):
    refiner = MV2H(COMPOSITE_MODELS, guard_config=chaos_config(seed))
    composite = refiner.refine(make_vertex_cut(small_graph, 4))
    for name in COMPOSITE_MODELS:
        check_partition(composite.partition_for(name))
        assert refiner.last_stats.guard[name].unrepaired_violations == 0


@pytest.mark.parametrize("kind", DEFAULT_KINDS)
def test_e2h_survives_each_corruption_kind(power_graph, kind):
    refiner = E2H(
        builtin_cost_model("pr"),
        guard_config=chaos_config(7, kinds=(kind,), rate=0.5),
    )
    refined = refiner.refine(make_edge_cut(power_graph, 4))
    check_partition(refined)
    stats = refiner.last_stats.guard
    assert stats.corruptions_injected > 0
    assert stats.repairs > 0
    assert stats.unrepaired_violations == 0


def test_e2h_survives_unrepairable_edge_loss(power_graph):
    # Lost fragment contents cannot be re-derived: the guard rolls back.
    refiner = E2H(
        builtin_cost_model("pr"),
        guard_config=GuardConfig(
            check_interval=2,
            chaos=ChaosPlan(seed=11, corrupt_rate=0.2, kinds=("edges",)),
        ),
    )
    refined = refiner.refine(make_edge_cut(power_graph, 4))
    check_partition(refined)
    stats = refiner.last_stats.guard
    assert stats.corruptions_injected > 0
    assert stats.rollbacks > 0
    assert stats.unrepaired_violations == 0


# ----------------------------------------------------------------------
# Budgets and cost-model guardrails
# ----------------------------------------------------------------------
def test_e2h_step_budget_early_stops_with_valid_output(power_graph):
    refiner = E2H(
        builtin_cost_model("pr"), guard_config=GuardConfig(max_steps=5)
    )
    refined = refiner.refine(make_edge_cut(power_graph, 4))
    check_partition(refined)
    stats = refiner.last_stats.guard
    assert stats.early_stopped
    assert stats.steps == 5


def test_composite_budget_exhaustion_keeps_outputs_complete(small_graph):
    # A mid-construction stop must not leave the outputs partial: the
    # phases fall back to cheapest-fragment placement instead.
    refiner = ME2H(COMPOSITE_MODELS, guard_config=GuardConfig(max_steps=10))
    composite = refiner.refine(make_edge_cut(small_graph, 4))
    for name in COMPOSITE_MODELS:
        check_partition(composite.partition_for(name))
    assert any(
        stats.early_stopped for stats in refiner.last_stats.guard.values()
    )


def test_nan_cost_model_never_reaches_move_selection(power_graph):
    class _NaNPoly:
        def evaluate(self, features):
            return float("nan")

    broken = CostModel("pr", _NaNPoly(), _NaNPoly())
    refiner = E2H(broken, guard_config=GuardConfig())
    refined = refiner.refine(make_edge_cut(power_graph, 4))
    check_partition(refined)
    stats = refiner.last_stats
    assert stats.guard.cost_model_interventions > 0
    assert math.isfinite(stats.cost_before)
    assert math.isfinite(stats.cost_after)


# ----------------------------------------------------------------------
# Regression: stale placement index healed by add_vertex_to / emigrate
# ----------------------------------------------------------------------
def test_chaos_seed_7058_stale_placement_survives():
    """Exact repro of the pre-resilience placement-index crash.

    Chaos at seed 7058 removed a fragment from ``_placement[v]`` while
    the fragment still held the copy (and its edges); the next EMigrate
    to that fragment found every edge already present, so nothing
    re-indexed the endpoint, and ``set_master`` raised ``ValueError:
    fragment 0 holds no copy of vertex 4``.  The placement self-check in
    ``emigrate`` (backed by the ``add_vertex_to`` heal) must repair the
    index in place instead.
    """
    from repro.graph.digraph import Graph

    graph = Graph(6, [(2, 4), (5, 0)], directed=False)
    partition = HybridPartition.from_vertex_assignment(
        graph, [0 if v == 1 else 1 for v in range(6)], 2
    )
    refiner = E2H(
        builtin_cost_model("pr"),
        guard_config=GuardConfig(
            check_interval=2, chaos=ChaosPlan(seed=7058, corrupt_rate=0.5)
        ),
    )
    refined = refiner.refine(partition)
    check_partition(refined)
    assert refiner.last_stats.guard.unrepaired_violations == 0


def test_add_vertex_to_heals_stale_placement_entry():
    """Direct unit repro: a held-but-unindexed copy is re-indexed."""
    from repro.graph.digraph import Graph

    graph = Graph(4, [(0, 1), (2, 3)], directed=False)
    partition = HybridPartition.from_vertex_assignment(graph, [0, 0, 1, 1], 2)
    # Simulate index corruption: fragment 0 still holds vertex 1, but the
    # placement index forgets it.
    partition._placement[1].discard(0)
    assert partition.fragments[0].has_vertex(1)
    added = partition.add_vertex_to(0, 1)
    assert not added  # the copy was already there...
    assert 0 in partition._placement[1]  # ...but the index is healed
    partition.set_master(1, 0)  # and the master move cannot crash
    check_partition(partition)
