"""Tests for local index repair: fragment contents are ground truth."""

import pytest

from repro.integrity.chaos import ChaosPlan, PartitionChaos
from repro.integrity.repair import repair_indexes
from repro.partition.serialize import partition_to_dict
from repro.partition.validation import collect_violations

from tests.conftest import make_edge_cut, make_vertex_cut


def test_clean_partition_needs_no_repair(power_graph):
    partition = make_edge_cut(power_graph, 4)
    assert repair_indexes(partition) == []


@pytest.mark.parametrize("kind", ["placement", "roles"])
def test_index_corruption_repaired_exactly(power_graph, kind):
    # Placement and full-copy indexes are fully determined by fragment
    # contents, so repair restores the pre-corruption state bit for bit.
    partition = make_edge_cut(power_graph, 4)
    pristine = partition_to_dict(partition)
    chaos = PartitionChaos(ChaosPlan(seed=5, corrupt_rate=1.0, kinds=(kind,)))
    for _ in range(5):
        chaos.corrupt(partition)
    assert collect_violations(partition) != []
    repairs = repair_indexes(partition)
    assert repairs != []
    assert collect_violations(partition) == []
    assert partition_to_dict(partition) == pristine


def test_master_corruption_repaired_with_reference(power_graph):
    partition = make_edge_cut(power_graph, 4)
    pristine = partition_to_dict(partition)
    reference = {int(v): int(fid) for v, fid in pristine["masters"].items()}
    chaos = PartitionChaos(
        ChaosPlan(seed=5, corrupt_rate=1.0, kinds=("masters",))
    )
    for _ in range(5):
        chaos.corrupt(partition)
    assert collect_violations(partition) != []
    repair_indexes(partition, reference_masters=reference)
    assert collect_violations(partition) == []
    assert partition_to_dict(partition) == pristine


def test_master_corruption_repaired_without_reference(power_graph):
    # No reference: the deterministic min(hosts) fallback restores
    # validity (though not necessarily the original assignment).
    partition = make_edge_cut(power_graph, 4)
    chaos = PartitionChaos(
        ChaosPlan(seed=5, corrupt_rate=1.0, kinds=("masters",))
    )
    corruption = chaos.corrupt(partition)
    repair_indexes(partition)
    assert collect_violations(partition) == []
    v = corruption.vertex
    assert partition.master(v) in partition.placement(v)


def test_valid_masters_never_touched(power_graph):
    # A bogus reference must not override masters that are still valid.
    partition = make_edge_cut(power_graph, 4)
    pristine = partition_to_dict(partition)
    bogus = {int(v): -1 for v in pristine["masters"]}
    assert repair_indexes(partition, reference_masters=bogus) == []
    assert partition_to_dict(partition) == pristine


def test_lost_edges_not_repairable(power_graph):
    # Fragment contents are the ground truth; when they are lost, repair
    # cannot regrow them — coverage violations remain (rollback's job).
    partition = make_vertex_cut(power_graph, 4)
    chaos = PartitionChaos(ChaosPlan(seed=5, corrupt_rate=1.0, kinds=("edges",)))
    assert chaos.corrupt(partition) is not None
    repair_indexes(partition)
    remaining = collect_violations(partition)
    assert remaining != []
    assert all(v.kind == "edge-coverage" for v in remaining)
