"""Tests for the deterministic partition-corruption driver."""

import pytest

from repro.integrity.chaos import (
    CORRUPTION_KINDS,
    ChaosPlan,
    PartitionChaos,
)
from repro.partition.validation import collect_violations

from tests.conftest import make_edge_cut


def test_plan_validation():
    with pytest.raises(ValueError, match="corrupt_rate"):
        ChaosPlan(corrupt_rate=1.5)
    with pytest.raises(ValueError, match="unknown corruption kinds"):
        ChaosPlan(corrupt_rate=0.1, kinds=("placement", "bitflip"))
    with pytest.raises(ValueError, match="kinds"):
        ChaosPlan(corrupt_rate=0.1, kinds=())
    with pytest.raises(ValueError, match="max_corruptions"):
        ChaosPlan(corrupt_rate=0.1, max_corruptions=-1)
    assert ChaosPlan(corrupt_rate=0.0).is_empty
    assert ChaosPlan(corrupt_rate=0.5, max_corruptions=0).is_empty
    assert not ChaosPlan(corrupt_rate=0.5).is_empty


def test_same_seed_same_corruptions(power_graph):
    plan = ChaosPlan(seed=42, corrupt_rate=0.5)
    runs = []
    for _ in range(2):
        partition = make_edge_cut(power_graph, 4)
        chaos = PartitionChaos(plan)
        for _step in range(50):
            chaos.maybe_corrupt(partition)
        runs.append(chaos.injected)
    assert runs[0] == runs[1]
    assert len(runs[0]) > 0


def test_salt_decorrelates_streams(power_graph):
    plan = ChaosPlan(seed=42, corrupt_rate=0.5)
    runs = []
    for salt in ("pr", "wcc"):
        partition = make_edge_cut(power_graph, 4)
        chaos = PartitionChaos(plan, salt=salt)
        for _step in range(50):
            chaos.maybe_corrupt(partition)
        runs.append(chaos.injected)
    assert runs[0] != runs[1]


@pytest.mark.parametrize("kind", CORRUPTION_KINDS)
def test_each_kind_produces_a_detectable_violation(power_graph, kind):
    partition = make_edge_cut(power_graph, 4)
    assert collect_violations(partition) == []
    chaos = PartitionChaos(ChaosPlan(seed=3, corrupt_rate=1.0, kinds=(kind,)))
    corruption = chaos.corrupt(partition)
    assert corruption is not None
    assert corruption.kind == kind
    assert collect_violations(partition) != []


def test_max_corruptions_cap(power_graph):
    partition = make_edge_cut(power_graph, 4)
    plan = ChaosPlan(seed=1, corrupt_rate=1.0, max_corruptions=3)
    chaos = PartitionChaos(plan)
    for _step in range(20):
        chaos.maybe_corrupt(partition)
    assert len(chaos.injected) == 3


def test_empty_plan_never_injects(power_graph):
    partition = make_edge_cut(power_graph, 4)
    chaos = PartitionChaos(ChaosPlan(seed=1, corrupt_rate=0.0))
    for _step in range(20):
        assert chaos.maybe_corrupt(partition) is None
    assert chaos.injected == []
    assert collect_violations(partition) == []
