"""Tests for GuardedCostModel: no insane prediction reaches a caller."""

import math

import pytest

from repro.costmodel.guarded import (
    DEFAULT_MAX_VALUE,
    GuardedCostModel,
    guard_cost_model,
)
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import CostModel, constant_cost_model

FEATURES = {
    "d_in_L": 2.0,
    "d_out_L": 3.0,
    "d_in_G": 4.0,
    "d_out_G": 5.0,
    "r": 2.0,
    "D": 6.0,
    "I": 1.0,
    "d_L": 5.0,
    "d_G": 9.0,
    "M": 1.0,
}


class _FixedPoly:
    """A 'polynomial' returning one fixed value — broken models on demand."""

    def __init__(self, value: float) -> None:
        self.value = value

    def evaluate(self, features) -> float:
        return self.value


def broken_model(value: float, name: str = "pr") -> CostModel:
    return CostModel(name, _FixedPoly(value), _FixedPoly(value))


def test_sane_predictions_pass_through_unchanged():
    model = builtin_cost_model("pr")
    guarded = guard_cost_model(model)
    assert guarded.h_value(FEATURES) == model.h_value(FEATURES)
    assert guarded.g_value(FEATURES) == model.g_value(FEATURES)
    assert guarded.interventions == 0


@pytest.mark.parametrize(
    "bad", [float("nan"), float("inf"), float("-inf"), -1.0, 1e20]
)
def test_insane_predictions_replaced_by_fallback(bad):
    guarded = guard_cost_model(broken_model(bad, name="pr"))
    fallback = builtin_cost_model("pr")
    value = guarded.h_value(FEATURES)
    assert value == fallback.h_value(FEATURES)
    assert math.isfinite(value) and value >= 0
    assert guarded.g_value(FEATURES) == fallback.g_value(FEATURES)
    assert guarded.interventions == 2


def test_clamping_without_fallback():
    # An unknown algorithm name has no Table 5 fallback: clamp instead.
    assert guard_cost_model(broken_model(float("nan"), "??")).h_value(FEATURES) == 0.0
    assert guard_cost_model(broken_model(float("inf"), "??")).h_value(FEATURES) == 0.0
    assert guard_cost_model(broken_model(-7.0, "??")).h_value(FEATURES) == 0.0
    assert (
        guard_cost_model(broken_model(1e20, "??")).h_value(FEATURES)
        == DEFAULT_MAX_VALUE
    )


def test_intervention_callback_fires():
    fired = []
    guarded = guard_cost_model(
        broken_model(float("nan")), on_intervention=lambda: fired.append(1)
    )
    guarded.h_value(FEATURES)
    guarded.h_value(FEATURES)
    assert len(fired) == 2
    assert guarded.interventions == 2


def test_guard_is_idempotent():
    guarded = guard_cost_model(constant_cost_model())
    assert guard_cost_model(guarded) is guarded


def test_max_value_validation():
    with pytest.raises(ValueError, match="max_value"):
        guard_cost_model(constant_cost_model(), max_value=0.0)
    with pytest.raises(ValueError, match="max_value"):
        guard_cost_model(constant_cost_model(), max_value=float("inf"))


def test_explicit_fallback_wins():
    fallback = constant_cost_model()
    guarded = guard_cost_model(broken_model(float("nan"), "pr"), fallback=fallback)
    assert guarded.h_value(FEATURES) == fallback.h_value(FEATURES)


def test_fragment_costs_route_through_guards(power_graph):
    # The whole CostModel API funnels through h_value/g_value, so a
    # broken model behind guardrails still yields finite fragment costs.
    from tests.conftest import make_edge_cut

    partition = make_edge_cut(power_graph, 4)
    guarded = guard_cost_model(broken_model(float("nan"), "pr"))
    assert isinstance(guarded, GuardedCostModel)
    cost = guarded.parallel_cost(partition)
    assert math.isfinite(cost) and cost >= 0
    assert guarded.interventions > 0
