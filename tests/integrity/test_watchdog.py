"""Tests for the incremental invariant watchdog."""

from repro.integrity.watchdog import InvariantWatchdog

from tests.conftest import make_edge_cut


def test_clean_partition_has_no_violations(power_graph):
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    assert watchdog.check() == []
    assert watchdog.check(full=True) == []
    watchdog.detach()


def test_mutations_mark_vertices_dirty(power_graph):
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    assert watchdog.dirty_count == 0
    v = next(
        v for v, hosts in partition.vertex_fragments() if len(hosts) > 1
    )
    other = next(
        fid for fid in sorted(partition.placement(v)) if fid != partition.master(v)
    )
    partition.set_master(v, other)
    assert watchdog.dirty_count >= 1
    watchdog.check()
    assert watchdog.dirty_count == 0  # check consumes the dirty set
    watchdog.detach()


def test_incremental_check_detects_ghost_placement(power_graph):
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    v = next(
        v
        for v, hosts in partition.vertex_fragments()
        if len(hosts) < partition.num_fragments
    )
    ghost = next(
        fid
        for fid in range(partition.num_fragments)
        if fid not in partition.placement(v)
    )
    partition._placement[v].add(ghost)
    partition._notify(v)
    violations = watchdog.check()
    assert any(
        vio.kind == "placement-ghost" and vio.vertex == v for vio in violations
    )
    watchdog.detach()


def test_silent_corruption_caught_by_full_check(power_graph):
    # Corruption that bypasses the listener channel is invisible to the
    # incremental path but must be caught by the full sweep.
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    v = next(v for v, _hosts in partition.vertex_fragments())
    saved = partition._masters.pop(v)
    assert watchdog.check() == []  # nothing marked dirty
    assert any(vio.kind == "master" for vio in watchdog.check(full=True))
    partition._masters[v] = saved
    watchdog.detach()


def test_detach_stops_tracking(power_graph):
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    watchdog.detach()
    v = next(
        v for v, hosts in partition.vertex_fragments() if len(hosts) > 1
    )
    other = next(
        fid for fid in sorted(partition.placement(v)) if fid != partition.master(v)
    )
    partition.set_master(v, other)
    assert watchdog.dirty_count == 0
    watchdog.detach()  # idempotent


def test_coverage_flag_scopes_incremental_checks(power_graph):
    # A vertex placed nowhere is a coverage violation only when the
    # partition is supposed to cover the graph already.
    partition = make_edge_cut(power_graph, 4)
    watchdog = InvariantWatchdog(partition)
    isolated = next(
        v for v in power_graph.vertices if power_graph.degree(v) == 0
    )
    for fragment in partition.fragments:
        if fragment.has_vertex(isolated):
            fragment._remove_vertex(isolated)
    partition._placement.pop(isolated, None)
    partition._full.pop(isolated, None)
    partition._masters.pop(isolated, None)
    partition._notify(isolated)
    assert any(
        vio.kind == "vertex-coverage" for vio in watchdog.check()
    )
    partition._notify(isolated)
    assert watchdog.check(coverage=False) == []
    watchdog.detach()
