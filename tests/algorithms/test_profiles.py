"""Tests for instrumentation profiles: the cost shapes the models learn."""

import pytest

from repro.algorithms.base import bearing_copies, compute_edge_owners, global_or
from repro.algorithms.registry import get_algorithm
from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, star_graph
from repro.partition.hybrid import HybridPartition
from repro.runtime.bsp import Cluster

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture(scope="module")
def graph():
    return chung_lu_power_law(200, 6.0, seed=41)


class TestEdgeOwners:
    def test_every_edge_owned_once(self, graph):
        p = make_edge_cut(graph, 3)
        owners = compute_edge_owners(p)
        assert set(owners) == set(graph.edges())
        for edge, fid in owners.items():
            assert p.fragments[fid].has_edge(edge)

    def test_target_aware_prefers_home(self, graph):
        p = make_edge_cut(graph, 3)
        owners = compute_edge_owners(p, target_aware=True)
        for edge, fid in list(owners.items())[:200]:
            home = p.designated_home(edge[1])
            if home is not None and p.fragments[home].has_edge(edge):
                assert fid == home

    def test_vertex_cut_ownership_unique(self, graph):
        p = make_vertex_cut(graph, 3)
        owners = compute_edge_owners(p)
        assert len(owners) == graph.num_edges


class TestBearingCopies:
    def test_edge_cut_one_bearing_copy_per_vertex(self, graph):
        p = make_edge_cut(graph, 3)
        copies = list(bearing_copies(p))
        assert len(copies) == graph.num_vertices

    def test_vertex_cut_bearing_at_least_one(self, graph):
        p = make_vertex_cut(graph, 3)
        seen = {v for _fid, v in bearing_copies(p)}
        assert seen == set(graph.vertices)


class TestGlobalOr:
    def test_true_when_any(self, graph):
        p = make_edge_cut(graph, 3)
        cluster = Cluster(p)
        assert global_or(cluster, {0: False, 1: True, 2: False})

    def test_false_when_none(self, graph):
        p = make_edge_cut(graph, 3)
        cluster = Cluster(p)
        assert not global_or(cluster, {0: False, 1: False, 2: False})


class TestCostShapes:
    def test_pr_ops_proportional_to_edges(self, graph):
        p = make_edge_cut(graph, 3)
        r3 = get_algorithm("pr").run(p, iterations=3)
        r6 = get_algorithm("pr").run(p, iterations=6)
        assert r6.profile.total_ops == pytest.approx(2 * r3.profile.total_ops, rel=0.01)

    def test_pr_per_copy_ops_track_in_degree(self, graph):
        p = make_edge_cut(graph, 3)
        result = get_algorithm("pr").run(p, iterations=1)
        for (fid, v), ops in list(result.profile.comp_ops_by_copy.items())[:100]:
            assert ops <= graph.in_degree(v) + 1e-9

    def test_hub_master_bears_cn_merge_cost(self):
        # Hub 0 split across fragments: the master copy does the pair merge.
        g = star_graph(8)
        assignment = {e: i % 2 for i, e in enumerate(g.edges())}
        p = HybridPartition.from_edge_assignment(g, assignment, 2)
        result = get_algorithm("cn").run(p)
        master = p.master(0)
        ops_at_master = result.profile.comp_ops_by_copy.get((master, 0), 0)
        assert ops_at_master >= 8 * 7 / 2  # all pairs counted at the master

    def test_sssp_charges_only_active_relaxations(self, graph):
        p = make_edge_cut(graph, 3)
        result = get_algorithm("sssp").run(p, source=0)
        assert result.profile.total_ops <= 3 * graph.num_edges + graph.num_vertices

    def test_makespan_positive_and_supersteps_counted(self, graph):
        p = make_vertex_cut(graph, 3)
        result = get_algorithm("wcc").run(p)
        assert result.makespan > 0
        assert result.profile.num_supersteps >= 3
