"""Sanity tests for the single-machine reference implementations."""

import math

import pytest

from repro.algorithms.reference import (
    reference_common_neighbors,
    reference_pagerank,
    reference_sssp,
    reference_triangle_count,
    reference_wcc,
)
from repro.graph.digraph import Graph
from repro.graph.generators import complete_graph, path_graph, star_graph


def test_pagerank_sums_to_one_without_dangling():
    # Cycle: no dangling mass lost.
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    ranks = reference_pagerank(g, iterations=50)
    assert sum(ranks.values()) == pytest.approx(1.0)
    for v in g.vertices:
        assert ranks[v] == pytest.approx(0.25)


def test_pagerank_hub_ranks_highest():
    g = star_graph(6)
    ranks = reference_pagerank(g, iterations=20)
    assert ranks[0] == max(ranks.values())


def test_wcc_components():
    g = Graph(5, [(0, 1), (3, 4)])
    labels = reference_wcc(g)
    assert labels[0] == labels[1] == 0
    assert labels[3] == labels[4] == 3
    assert labels[2] == 2


def test_wcc_direction_ignored():
    g = Graph(3, [(2, 0), (1, 0)])
    labels = reference_wcc(g)
    assert len(set(labels.values())) == 1


def test_sssp_path():
    g = path_graph(5)
    dist = reference_sssp(g, 0)
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}


def test_sssp_directed_respects_direction():
    g = Graph(3, [(0, 1), (2, 1)])
    dist = reference_sssp(g, 0)
    assert dist[1] == 1.0
    assert math.isinf(dist[2])


def test_triangle_count_complete_graph():
    assert reference_triangle_count(complete_graph(5)) == 10
    assert reference_triangle_count(complete_graph(6)) == 20


def test_triangle_count_triangle_free():
    assert reference_triangle_count(path_graph(10)) == 0
    assert reference_triangle_count(star_graph(10).as_undirected()) == 0


def test_common_neighbors_star():
    # All 10 pairs of leaves share the hub as an out-neighbor.
    g = star_graph(5)
    pairs = reference_common_neighbors(g, return_pairs=True)
    assert len(pairs) == 10
    assert all(count == 1 for count in pairs.values())
    assert reference_common_neighbors(g) == 10


def test_common_neighbors_theta_excludes_hub():
    g = star_graph(5)
    assert reference_common_neighbors(g, theta=4) == 0
