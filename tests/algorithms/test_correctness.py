"""Partition-transparency tests: every algorithm must compute the exact
single-machine answer under edge-cut, vertex-cut, hybrid and refined
partitions — the property the paper's algorithms from [20, 21] guarantee."""

import math

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.algorithms.reference import (
    reference_common_neighbors,
    reference_pagerank,
    reference_sssp,
    reference_triangle_count,
    reference_wcc,
)
from repro.core.e2h import E2H
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.graph.generators import chung_lu_power_law, road_grid

from tests.conftest import make_edge_cut, make_vertex_cut


GRAPHS = {
    "power_directed": chung_lu_power_law(180, 6.0, directed=True, seed=31),
    "power_undirected": chung_lu_power_law(150, 5.0, directed=False, seed=32),
    "grid": road_grid(7, 7, seed=33),
}


def _partitions(graph):
    yield "edge_cut", make_edge_cut(graph, 3, seed=1)
    yield "vertex_cut", make_vertex_cut(graph, 3, seed=1)
    model = builtin_cost_model("wcc")
    yield "hybrid_e2h", E2H(model).refine(make_edge_cut(graph, 3, seed=2))
    yield "hybrid_v2h", V2H(model).refine(make_vertex_cut(graph, 3, seed=2))


def _all_cases():
    for gname, graph in GRAPHS.items():
        for pname, partition in _partitions(graph):
            yield pytest.param(graph, partition, id=f"{gname}-{pname}")


CASES = list(_all_cases())


@pytest.mark.parametrize("graph,partition", CASES)
def test_pagerank_matches_reference(graph, partition):
    result = get_algorithm("pr").run(partition, iterations=5)
    reference = reference_pagerank(graph, iterations=5)
    for v in graph.vertices:
        assert result.values[v] == pytest.approx(reference[v], abs=1e-10)


@pytest.mark.parametrize("graph,partition", CASES)
def test_wcc_matches_reference(graph, partition):
    result = get_algorithm("wcc").run(partition)
    assert result.values == reference_wcc(graph)


@pytest.mark.parametrize("graph,partition", CASES)
def test_sssp_matches_reference(graph, partition):
    result = get_algorithm("sssp").run(partition, source=0)
    assert result.values == reference_sssp(graph, 0)


@pytest.mark.parametrize("graph,partition", CASES)
def test_triangle_count_matches_reference(graph, partition):
    result = get_algorithm("tc").run(partition)
    assert result.values == reference_triangle_count(graph)


@pytest.mark.parametrize("graph,partition", CASES)
def test_common_neighbors_matches_reference(graph, partition):
    result = get_algorithm("cn").run(partition, return_pairs=True)
    assert result.values == reference_common_neighbors(graph, return_pairs=True)


class TestCnTheta:
    def test_theta_filters_high_degree(self):
        graph = GRAPHS["power_directed"]
        partition = make_edge_cut(graph, 3, seed=4)
        full = get_algorithm("cn").run(partition).values
        filtered = get_algorithm("cn").run(partition, theta=5).values
        assert filtered <= full
        assert filtered == reference_common_neighbors(graph, theta=5)

    def test_scalar_equals_pair_sum(self):
        graph = GRAPHS["power_directed"]
        partition = make_vertex_cut(graph, 3, seed=4)
        scalar = get_algorithm("cn").run(partition).values
        pairs = get_algorithm("cn").run(partition, return_pairs=True).values
        assert scalar == sum(pairs.values())


class TestSsspUnreachable:
    def test_unreachable_distance_inf(self):
        from repro.graph.digraph import Graph

        g = Graph(4, [(0, 1)])
        partition = make_edge_cut(g, 2, seed=0)
        result = get_algorithm("sssp").run(partition, source=0)
        assert result.values[1] == 1.0
        assert math.isinf(result.values[3])

    def test_alternate_source(self):
        graph = GRAPHS["grid"]
        partition = make_vertex_cut(graph, 3, seed=5)
        result = get_algorithm("sssp").run(partition, source=10)
        assert result.values == reference_sssp(graph, 10)


class TestRegistry:
    def test_all_names_instantiable(self):
        for name in ALGORITHM_NAMES:
            assert get_algorithm(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_algorithm("bfs")

    def test_constructor_kwargs(self):
        algo = get_algorithm("pr", iterations=3)
        assert algo.iterations == 3
