"""Tests for the ADP problem and the Theorem 1 reduction."""

import pytest

from repro.core.adp import (
    ADPInstance,
    adp_decision,
    certificate_from_set_partition,
    reduction_cost_model,
    reduction_from_set_partition,
    set_partition_exists,
)


class TestSetPartitionDP:
    @pytest.mark.parametrize(
        "values,expected",
        [
            ([1, 1], True),
            ([3, 1, 1, 2, 2, 1], True),
            ([1, 2], False),
            ([2, 2, 3], False),
            ([5, 5], True),
            ([1, 1, 1], False),
            ([4, 3, 2, 1], True),
        ],
    )
    def test_decisions(self, values, expected):
        assert set_partition_exists(values) is expected


class TestReduction:
    def test_instance_shape(self):
        inst = reduction_from_set_partition([2, 3])
        assert inst.num_fragments == 2
        assert inst.budget == 2.5
        assert inst.graph.num_vertices == 5
        assert inst.graph.num_edges == 1 + 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            reduction_from_set_partition([2, 0])

    @pytest.mark.parametrize(
        "values", [[1, 1], [2, 2], [1, 2], [2, 1, 1], [3, 2, 1], [2, 2, 3]]
    )
    def test_reduction_agrees_with_dp(self, values):
        inst = reduction_from_set_partition(values)
        assert adp_decision(inst) is set_partition_exists(values)

    def test_forward_certificate(self):
        sizes = [2, 3, 1]
        inst = reduction_from_set_partition(sizes)
        # {2, 1} vs {3}: equal sums.
        partition = certificate_from_set_partition(inst, sizes, side_a=[0, 2])
        assert inst.accepts(partition)
        assert inst.partition_cost(partition) == pytest.approx(3.0)

    def test_unbalanced_certificate_rejected(self):
        sizes = [2, 3, 1]
        inst = reduction_from_set_partition(sizes)
        partition = certificate_from_set_partition(inst, sizes, side_a=[0])
        assert not inst.accepts(partition)

    def test_replication_penalized(self):
        # Splitting a clique incurs g = r - 1 > 0 on top of h.
        inst = reduction_from_set_partition([2, 2])
        model = reduction_cost_model()
        from repro.partition.hybrid import HybridPartition

        p = HybridPartition(inst.graph, 2)
        p.add_edge_to(0, (0, 1))
        p.add_edge_to(0, (2, 3))
        p.add_edge_to(1, (2, 3))  # replicate second clique
        cost_with_replicas = model.parallel_cost(p)
        clean = certificate_from_set_partition(inst, [2, 2], side_a=[0])
        assert cost_with_replicas > model.parallel_cost(clean)

    def test_exhaustive_guard(self):
        inst = reduction_from_set_partition([8, 8])
        with pytest.raises(ValueError):
            adp_decision(inst, max_vertices=10)
