"""Tests for MAssign (Eq. 5)."""

import pytest

from repro.core.massign import massign
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import CostModel
from repro.costmodel.polynomial import Monomial, PolynomialCostFunction
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition

from tests.conftest import make_vertex_cut


def test_masters_stay_on_hosting_fragments(power_graph):
    p = make_vertex_cut(power_graph, 4, seed=6)
    tracker = CostTracker(p, builtin_cost_model("pr"))
    massign(tracker)
    for v, hosts in p.vertex_fragments():
        assert p.master(v) in hosts
    tracker.detach()


def test_does_not_increase_comm_imbalance(power_graph):
    model = builtin_cost_model("pr")
    p = make_vertex_cut(power_graph, 4, seed=6)
    # Adversarial start: pile all masters onto fragment 0 where possible.
    for v, hosts in list(p.vertex_fragments()):
        if 0 in hosts:
            p.set_master(v, 0)
    tracker = CostTracker(p, model)
    before = max(tracker.comm_cost(f) for f in range(4))
    moves = massign(tracker)
    after = max(tracker.comm_cost(f) for f in range(4))
    assert moves > 0
    assert after <= before
    tracker.detach()


def test_single_host_vertices_untouched():
    g = Graph(3, [(0, 1), (1, 2)])
    p = HybridPartition.from_edge_assignment(g, {(0, 1): 0, (1, 2): 0}, 2)
    tracker = CostTracker(p, builtin_cost_model("pr"))
    assert massign(tracker) == 0
    tracker.detach()


def test_restricted_vertex_list(power_graph):
    p = make_vertex_cut(power_graph, 4, seed=6)
    tracker = CostTracker(p, builtin_cost_model("pr"))
    borders = [v for v, h in p.vertex_fragments() if len(h) > 1]
    subset = borders[:5]
    masters_before = {v: p.master(v) for v in borders}
    massign(tracker, vertices=subset)
    for v in borders[5:]:
        assert p.master(v) == masters_before[v]
    tracker.detach()


def test_master_dependent_computation_spreads():
    """With h = M * d_G, Eq. 5 + delta accounting must spread masters."""
    # Two split vertices, both initially mastered at fragment 0.
    g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    p = HybridPartition(g, 2)
    p.add_edge_to(0, (0, 1))
    p.add_edge_to(1, (1, 2))
    p.add_edge_to(0, (3, 4))
    p.add_edge_to(1, (4, 5))
    p.set_master(1, 0)
    p.set_master(4, 0)
    h = PolynomialCostFunction([Monomial(1.0, {"M": 1, "d_G": 1})], "h")
    gm = PolynomialCostFunction([Monomial(0.01, {"r": 1})], "g")
    model = CostModel("m", h, gm)
    tracker = CostTracker(p, model)
    massign(tracker)
    # The two master-side loads should not share a fragment.
    assert p.master(1) != p.master(4)
    tracker.detach()
