"""Tests for the GetDest greedy set-cover heuristic (Fig. 7)."""

from repro.core.getdest import get_dest


def test_single_fragment_covers_all():
    dest = get_dest(
        ["cn", "tc", "wcc"],
        {"cn": {1, 2}, "tc": {2}, "wcc": {2, 3}},
    )
    assert dest == {"cn": 2, "tc": 2, "wcc": 2}


def test_paper_example14():
    # U_CN={F1,F2,F3}, U_TC={F2,F3}, U_WCC={F2,F4}, U_PR={F4}
    dest = get_dest(
        ["cn", "tc", "wcc", "pr"],
        {"cn": {1, 2, 3}, "tc": {2, 3}, "wcc": {2, 4}, "pr": {4}},
    )
    # F2 covers CN, TC, WCC; F4 covers PR: two destinations total.
    assert dest["cn"] == dest["tc"] == dest["wcc"] == 2
    assert dest["pr"] == 4
    assert len(set(dest.values())) == 2


def test_uncoverable_algorithms_absent():
    dest = get_dest(["a", "b"], {"a": {1}, "b": set()})
    assert dest == {"a": 1}


def test_fits_predicate_filters():
    dest = get_dest(
        ["a", "b"],
        {"a": {1, 2}, "b": {1, 2}},
        fits=lambda alg, fid: fid != 1,
    )
    assert dest == {"a": 2, "b": 2}


def test_empty_input():
    assert get_dest([], {}) == {}


def test_deterministic_tie_break():
    a = get_dest(["x", "y"], {"x": {1, 2}, "y": {1, 2}})
    b = get_dest(["x", "y"], {"x": {1, 2}, "y": {1, 2}})
    assert a == b


def test_greedy_minimizes_destinations():
    # Optimal cover uses 2 fragments; greedy must find it here.
    dest = get_dest(
        ["a", "b", "c", "d"],
        {"a": {1}, "b": {1}, "c": {2}, "d": {2}},
    )
    assert len(set(dest.values())) == 2
