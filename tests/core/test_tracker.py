"""Tests for the incremental cost tracker: it must agree exactly with a
from-scratch CostModel evaluation after arbitrary mutation sequences."""

import numpy as np
import pytest

from repro.core.operations import emigrate, split_migrate_edge, vmerge, vmigrate
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import constant_cost_model

from tests.conftest import make_edge_cut, make_vertex_cut


def assert_tracker_exact(tracker):
    """Tracker sums must equal a full recomputation."""
    partition = tracker.partition
    model = tracker.cost_model
    for fid in range(partition.num_fragments):
        assert tracker.comp_cost(fid) == pytest.approx(
            model.fragment_comp_cost(partition, fid), abs=1e-9
        )
        assert tracker.comm_cost(fid) == pytest.approx(
            model.fragment_comm_cost(partition, fid), abs=1e-9
        )


@pytest.mark.parametrize("alg", ["cn", "pr", "wcc", "tc"])
def test_initial_sums_match_model(alg, power_graph):
    p = make_edge_cut(power_graph, 4)
    tracker = CostTracker(p, builtin_cost_model(alg))
    assert_tracker_exact(tracker)
    tracker.detach()


def test_exact_after_edge_mutations(power_graph):
    p = make_edge_cut(power_graph, 3)
    tracker = CostTracker(p, builtin_cost_model("cn"))
    rng = np.random.default_rng(5)
    edges = list(power_graph.edges())
    for _ in range(30):
        edge = edges[rng.integers(0, len(edges))]
        hosts = [f for f in range(3) if p.fragments[f].has_edge(edge)]
        target = int(rng.integers(0, 3))
        if target not in hosts:
            p.add_edge_to(target, edge)
        elif len(hosts) > 1:
            p.remove_edge_from(hosts[0], edge)
    assert_tracker_exact(tracker)
    tracker.detach()


def test_exact_after_emigrate_and_split(power_graph):
    p = make_edge_cut(power_graph, 3)
    tracker = CostTracker(p, builtin_cost_model("cn"))
    moved = 0
    for v in power_graph.vertices:
        home = p.designated_home(v)
        if home == 0 and moved < 10:
            emigrate(p, v, 0, 1)
            moved += 1
    # Split a vertex still homed at 0.
    for v in power_graph.vertices:
        if p.designated_home(v) == 0 and p.fragments[0].incident_count(v) > 2:
            for edge in list(p.fragments[0].incident(v))[:2]:
                split_migrate_edge(p, v, edge, 0, 2)
            break
    assert_tracker_exact(tracker)
    tracker.detach()


def test_exact_after_vertex_cut_ops(power_graph):
    p = make_vertex_cut(power_graph, 3)
    tracker = CostTracker(p, builtin_cost_model("tc"))
    done = 0
    for v, hosts in list(p.vertex_fragments()):
        if len(hosts) >= 2 and done < 8:
            hosts = sorted(hosts)
            vmigrate(p, v, hosts[0], hosts[1])
            done += 1
    for v, hosts in list(p.vertex_fragments()):
        if p.is_vcut_vertex(v):
            vmerge(p, v, sorted(p.placement(v))[0])
            break
    assert_tracker_exact(tracker)
    tracker.detach()


def test_exact_after_master_moves(power_graph):
    p = make_vertex_cut(power_graph, 3)
    tracker = CostTracker(p, builtin_cost_model("pr"))
    for v, hosts in list(p.vertex_fragments())[:40]:
        if len(hosts) > 1:
            p.set_master(v, max(hosts))
    assert_tracker_exact(tracker)
    tracker.detach()


def test_parallel_cost_and_copy_cost(power_graph):
    p = make_edge_cut(power_graph, 3)
    tracker = CostTracker(p, constant_cost_model())
    # Constant model: every vertex bears exactly 1 at its home.
    assert sum(tracker.comp_costs()) == pytest.approx(power_graph.num_vertices)
    assert tracker.parallel_cost() == pytest.approx(
        max(tracker.comp_costs())
    )
    v = 0
    home = p.designated_home(v)
    assert tracker.copy_comp_cost(v, home) == pytest.approx(1.0)
    tracker.detach()


def test_detach_stops_updates(power_graph):
    p = make_edge_cut(power_graph, 3)
    tracker = CostTracker(p, constant_cost_model())
    before = tracker.comp_costs()
    tracker.detach()
    v = next(v for v in power_graph.vertices if p.designated_home(v) == 0)
    emigrate(p, v, 0, 1)
    assert tracker.comp_costs() == before  # stale by design after detach


def test_price_as_ecut_matches_post_move_contribution(power_graph):
    p = make_edge_cut(power_graph, 3)
    model = builtin_cost_model("cn")
    tracker = CostTracker(p, model)
    v = next(v for v in power_graph.vertices if p.designated_home(v) == 0)
    price = tracker.price_as_ecut(v)
    emigrate(p, v, 0, 1)
    assert tracker.copy_comp_cost(v, 1) == pytest.approx(price, rel=1e-9)
    tracker.detach()
