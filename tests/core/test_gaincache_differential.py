"""Differential suite: gain-cached refiners vs. the uncached oracle.

The gain cache (``repro.core.gaincache``, DESIGN.md §8) promises *exact*
speedups: with ``use_gain_cache=True`` every refiner must produce
bit-identical partitions, bit-identical tracked costs, and an identical
mutation sequence to the uncached reference path.  This suite checks
that promise for all six refiners across a grid of generated graphs and
seeds, plus a hypothesis property test that interleaves random partition
mutations with cache queries and compares every answer against a fresh
raw-model evaluation (catching stale-invalidation bugs directly).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import E2H, ME2H, MV2H, ParE2H, ParV2H, V2H
from repro.core.gaincache import GainCache
from repro.core.operations import emigrate
from repro.core.tracker import CostTracker
from repro.costmodel.features import hypothetical_ecut_features
from repro.costmodel.library import builtin_cost_model
from repro.graph.generators import chung_lu_power_law, road_grid
from repro.partition.serialize import partition_to_dict

from tests.conftest import make_edge_cut, make_vertex_cut

NUM_FRAGMENTS = 4
SEEDS = (0, 1, 2, 3, 4)
COMPOSITE_ALGS = ("pr", "wcc")

#: Three generated graph families; each seed yields a distinct instance.
GRAPHS = {
    "powerlaw_directed": lambda seed: chung_lu_power_law(
        80, 5.0, exponent=2.1, directed=True, seed=seed
    ),
    "powerlaw_undirected": lambda seed: chung_lu_power_law(
        100, 4.0, exponent=2.3, directed=False, seed=seed + 100
    ),
    "road_grid": lambda seed: road_grid(6, 6, seed=seed),
}


@functools.lru_cache(maxsize=None)
def _graph(kind: str, seed: int):
    return GRAPHS[kind](seed)


def _initial(graph, input_kind: str, seed: int):
    if input_kind == "edge":
        return make_edge_cut(graph, NUM_FRAGMENTS, seed=seed)
    return make_vertex_cut(graph, NUM_FRAGMENTS, seed=seed)


def _stats_signature(stats) -> Dict:
    """Comparable subset of RefineStats (timing/cache fields excluded)."""
    return {
        "budget": stats.budget,
        "overloaded": stats.overloaded,
        "candidates": stats.candidates,
        "emigrated": stats.emigrated,
        "split_vertices": stats.split_vertices,
        "split_edges": stats.split_edges,
        "vmigrated": stats.vmigrated,
        "vmerged": stats.vmerged,
        "master_moves": stats.master_moves,
        "cost_before": stats.cost_before,
        "cost_after": stats.cost_after,
    }


@dataclass
class RunResult:
    """Everything a differential comparison looks at."""

    partitions: Dict[str, Dict]
    costs: Dict
    moves: List[int]
    stats: Dict
    cache_stats: object = None


def _run_single(refiner_cls, graph, input_kind, seed, use_gain_cache):
    model = builtin_cost_model("pr")
    working = _initial(graph, input_kind, seed)
    # The refiner mutates ``working`` in place; the partition listener
    # records the exact mutation sequence (vertex per structural event).
    moves: List[int] = []
    working.add_listener(moves.append)
    refiner = refiner_cls(model, use_gain_cache=use_gain_cache)
    result = refiner.refine(working, in_place=True)
    working.remove_listener(moves.append)
    if isinstance(result, tuple):  # parallel refiners: (partition, profile)
        refined, profile = result
        stats = profile.stats
        costs = {
            "cost_before": stats.cost_before,
            "cost_after": stats.cost_after,
            "total_time": profile.total_time,
            "phase_supersteps": dict(profile.phase_supersteps),
        }
    else:
        refined = result
        stats = refiner.last_stats
        costs = {
            "cost_before": stats.cost_before,
            "cost_after": stats.cost_after,
        }
    return RunResult(
        partitions={"pr": partition_to_dict(refined)},
        costs=costs,
        moves=moves,
        stats=_stats_signature(stats),
        cache_stats=stats.gain_cache,
    )


def _run_composite(refiner_cls, graph, input_kind, seed, use_gain_cache):
    models = {name: builtin_cost_model(name) for name in COMPOSITE_ALGS}
    initial = _initial(graph, input_kind, seed)
    refiner = refiner_cls(models, use_gain_cache=use_gain_cache)
    composite = refiner.refine(initial)
    stats = refiner.last_stats
    return RunResult(
        partitions={
            name: partition_to_dict(part)
            for name, part in composite.partitions.items()
        },
        costs={"budgets": dict(stats.budgets)},
        # Composites build their outputs internally; the unit counters
        # summarize the move sequence instead of a listener log.
        moves=[stats.core_units, stats.vassign_units, stats.eassign_units],
        stats={"budgets": dict(stats.budgets)},
        cache_stats=stats.gain_cache,
    )


REFINERS = {
    "e2h": (E2H, "edge", _run_single),
    "v2h": (V2H, "vertex", _run_single),
    "me2h": (ME2H, "edge", _run_composite),
    "mv2h": (MV2H, "vertex", _run_composite),
    "pare2h": (ParE2H, "edge", _run_single),
    "parv2h": (ParV2H, "vertex", _run_single),
}


@pytest.mark.parametrize("graph_kind", sorted(GRAPHS))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("refiner_key", sorted(REFINERS))
def test_cached_path_bit_identical(refiner_key, graph_kind, seed):
    """Cached and uncached runs agree on partitions, costs, and moves."""
    refiner_cls, input_kind, runner = REFINERS[refiner_key]
    graph = _graph(graph_kind, seed)
    cached = runner(refiner_cls, graph, input_kind, seed, True)
    uncached = runner(refiner_cls, graph, input_kind, seed, False)

    assert cached.partitions == uncached.partitions
    assert cached.costs == uncached.costs  # exact float equality
    assert cached.moves == uncached.moves
    assert cached.stats == uncached.stats
    # The cached run actually exercised the cache; the oracle did not.
    assert cached.cache_stats is not None
    assert uncached.cache_stats in (None, {})


def test_cache_reports_hits_on_repeat_work():
    """A refinement with repeated candidate scoring records cache hits."""
    graph = _graph("powerlaw_directed", 0)
    result = _run_single(E2H, graph, "edge", 0, True)
    stats = result.cache_stats
    assert stats.hits + stats.misses > 0
    assert stats.value_hits > 0  # feature profiles repeat on power laws


# ----------------------------------------------------------------------
# Property test: random mutation/query interleavings
# ----------------------------------------------------------------------

def _fresh_cache_env():
    graph = chung_lu_power_law(40, 4.0, exponent=2.1, directed=True, seed=5)
    partition = make_edge_cut(graph, 3, seed=1)
    raw = builtin_cost_model("pr")
    cache = GainCache(partition, raw)
    tracker = CostTracker(partition, cache.model)
    cache.bind(tracker)
    return partition, raw, cache, tracker


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_random_interleavings_match_raw_oracle(data):
    """Every cache answer equals a fresh raw-model evaluation.

    Interleaves partition mutations (EMigrate moves, master flips) with
    cache queries in a hypothesis-drawn order.  A missed invalidation
    would surface as a stale float differing from the oracle, which is
    recomputed from the *current* partition state on every query.
    """
    partition, raw, cache, tracker = _fresh_cache_env()
    try:
        avg = tracker.avg_degree
        num_vertices = partition.graph.num_vertices
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(
                        ["query_ecut", "query_massign", "move", "master"]
                    ),
                    st.integers(0, num_vertices - 1),
                    st.integers(0, partition.num_fragments - 1),
                ),
                min_size=5,
                max_size=60,
            )
        )
        for op, v, fid in ops:
            hosts = sorted(partition.placement(v))
            if op == "query_ecut":
                expected = raw.h_value(
                    hypothetical_ecut_features(partition, v, avg)
                )
                assert cache.price_as_ecut(v) == expected
            elif op == "query_massign":
                if not hosts:
                    continue
                target = hosts[fid % len(hosts)]
                expected = (
                    raw.comm_cost_if_master_at(partition, v, target, avg),
                    raw.comp_master_delta(partition, v, target, avg),
                )
                assert cache.massign_scores(v, target) == expected
            elif op == "master":
                if not hosts:
                    continue
                partition.set_master(v, hosts[fid % len(hosts)])
            else:  # move: EMigrate v's edges out of one of its fragments
                if not hosts:
                    continue
                src = hosts[fid % len(hosts)]
                dst = (src + 1) % partition.num_fragments
                emigrate(partition, v, src, dst)
    finally:
        tracker.detach()
        cache.detach()


def test_invalidation_drops_stale_entries():
    """A mutation event drops exactly the touched vertex's cached gains."""
    partition, raw, cache, tracker = _fresh_cache_env()
    try:
        avg = tracker.avg_degree
        # A single-host vertex with edges: emigrating it is guaranteed to
        # fire mutation events (a hub replicated everywhere may already
        # hold its edges at the destination, making the move a no-op).
        v = next(
            v for v in range(partition.graph.num_vertices)
            if len(partition.placement(v)) == 1
            and partition.global_incident_count(v) > 0
        )
        before = cache.price_as_ecut(v)
        assert cache.price_as_ecut(v) == before  # served from cache
        assert cache.stats.vertex_hits >= 1
        src = sorted(partition.placement(v))[0]
        dst = (src + 1) % partition.num_fragments
        emigrate(partition, v, src, dst)
        assert cache.stats.invalidations >= 1
        expected = raw.h_value(hypothetical_ecut_features(partition, v, avg))
        assert cache.price_as_ecut(v) == expected
    finally:
        tracker.detach()
        cache.detach()
