"""End-to-end tests for the E2H and V2H refiners (Section 5)."""

import pytest

from repro.core.e2h import E2H
from repro.core.tracker import CostTracker
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut


def parallel_cost(partition, model):
    tracker = CostTracker(partition, model)
    cost = tracker.parallel_cost()
    tracker.detach()
    return cost


class TestE2H:
    @pytest.mark.parametrize("alg", ["cn", "pr", "wcc"])
    def test_reduces_parallel_cost(self, alg, power_graph):
        model = builtin_cost_model(alg)
        initial = make_edge_cut(power_graph, 4, seed=3)
        refined = E2H(model).refine(initial)
        check_partition(refined)
        assert parallel_cost(refined, model) < parallel_cost(initial, model)

    def test_input_not_mutated_by_default(self, power_graph):
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=3)
        before = initial.total_edge_copies()
        E2H(model).refine(initial)
        assert initial.total_edge_copies() == before

    def test_in_place_mutates(self, power_graph):
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=3)
        refined = E2H(model).refine(initial, in_place=True)
        assert refined is initial

    def test_stats_populated(self, power_graph):
        model = builtin_cost_model("cn")
        refiner = E2H(model)
        refiner.refine(make_edge_cut(power_graph, 4, seed=3))
        stats = refiner.last_stats
        assert stats.budget > 0
        assert stats.cost_after <= stats.cost_before
        assert stats.candidates >= stats.emigrated

    def test_phase_switches(self, power_graph):
        model = builtin_cost_model("cn")
        refiner = E2H(model, enable_esplit=False, enable_massign=False)
        refined = refiner.refine(make_edge_cut(power_graph, 4, seed=3))
        check_partition(refined)
        assert refiner.last_stats.split_edges == 0
        assert refiner.last_stats.master_moves == 0

    def test_balanced_input_unchanged_much(self, power_graph):
        model = builtin_cost_model("wcc")
        initial = make_edge_cut(power_graph, 4, seed=3)
        refiner = E2H(model, budget_slack=1.5)
        refined = refiner.refine(initial)
        check_partition(refined)

    def test_esplit_cuts_super_nodes(self, power_graph):
        # The hub (vertex 0) of a power-law graph exceeds any budget for
        # a quadratic cost model, so ESplit must cut it.
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=3)
        refiner = E2H(model)
        refined = refiner.refine(initial)
        assert refiner.last_stats.split_edges > 0 or refined.is_vcut_vertex(0)


class TestV2H:
    @pytest.mark.parametrize("alg", ["cn", "tc"])
    def test_reduces_parallel_cost(self, alg, power_graph):
        model = builtin_cost_model(alg)
        initial = make_vertex_cut(power_graph, 4, seed=5)
        refined = V2H(model).refine(initial)
        check_partition(refined)
        assert parallel_cost(refined, model) <= parallel_cost(initial, model) * 1.05

    def test_vmerge_creates_ecut_nodes(self, power_graph):
        model = builtin_cost_model("tc")
        initial = make_vertex_cut(power_graph, 4, seed=5)
        vcut_before = sum(
            1 for v, _h in initial.vertex_fragments() if initial.is_vcut_vertex(v)
        )
        refiner = V2H(model)
        refined = refiner.refine(initial)
        vcut_after = sum(
            1 for v, _h in refined.vertex_fragments() if refined.is_vcut_vertex(v)
        )
        assert refiner.last_stats.vmerged > 0
        assert vcut_after < vcut_before

    def test_input_preserved(self, power_graph):
        model = builtin_cost_model("tc")
        initial = make_vertex_cut(power_graph, 4, seed=5)
        before = initial.total_edge_copies()
        V2H(model).refine(initial)
        assert initial.total_edge_copies() == before

    def test_phase_switches(self, power_graph):
        model = builtin_cost_model("tc")
        refiner = V2H(model, enable_vmerge=False, enable_massign=False)
        refined = refiner.refine(make_vertex_cut(power_graph, 4, seed=5))
        check_partition(refined)
        assert refiner.last_stats.vmerged == 0
