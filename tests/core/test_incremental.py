"""Tests for incremental partition maintenance (the paper's future-work
extension: keep application-driven partitions fresh under graph updates)."""

import pytest

from repro.algorithms.reference import reference_wcc
from repro.algorithms.registry import get_algorithm
from repro.core.e2h import E2H
from repro.core.incremental import IncrementalRefiner, apply_graph_delta
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model
from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut


@pytest.fixture(scope="module")
def base_graph():
    return chung_lu_power_law(250, 6.0, seed=51)


@pytest.fixture()
def refined(base_graph):
    model = builtin_cost_model("wcc")
    return E2H(model).refine(make_edge_cut(base_graph, 4, seed=1))


class TestApplyGraphDelta:
    def test_insertions_and_deletions(self):
        g = Graph(4, [(0, 1), (1, 2)])
        updated = apply_graph_delta(g, insertions=[(2, 3)], deletions=[(0, 1)])
        assert updated.has_edge(2, 3)
        assert not updated.has_edge(0, 1)
        assert updated.has_edge(1, 2)

    def test_new_vertices_grow_graph(self):
        g = Graph(3, [(0, 1)])
        updated = apply_graph_delta(g, insertions=[(1, 6)])
        assert updated.num_vertices == 7

    def test_delete_absent_edge_noop(self):
        g = Graph(3, [(0, 1)])
        updated = apply_graph_delta(g, deletions=[(1, 2)])
        assert updated == g

    def test_undirected_canonicalization(self):
        g = Graph(3, [(0, 1)], directed=False)
        updated = apply_graph_delta(g, insertions=[(2, 1)])
        assert updated.has_edge(1, 2)


class TestIncrementalRefiner:
    def test_update_preserves_validity(self, base_graph, refined):
        maintainer = IncrementalRefiner(builtin_cost_model("wcc"))
        edges = list(base_graph.edges())
        updated = maintainer.update(
            refined,
            insertions=[(0, base_graph.num_vertices - 1)],
            deletions=edges[:5],
        )
        check_partition(updated)
        stats = maintainer.last_stats
        assert stats.deleted == 5
        assert stats.inserted <= 1  # may already exist

    def test_original_partition_untouched(self, base_graph, refined):
        maintainer = IncrementalRefiner(builtin_cost_model("wcc"))
        before = refined.total_edge_copies()
        maintainer.update(refined, deletions=list(base_graph.edges())[:3])
        assert refined.total_edge_copies() == before

    def test_algorithms_correct_after_update(self, base_graph, refined):
        maintainer = IncrementalRefiner(builtin_cost_model("wcc"))
        insertions = [(5, 190), (12, 40)]
        deletions = list(base_graph.edges())[10:14]
        updated = maintainer.update(refined, insertions, deletions)
        result = get_algorithm("wcc").run(updated)
        expected = reference_wcc(updated.graph)
        assert result.values == expected

    def test_new_vertex_gets_placed(self, base_graph, refined):
        maintainer = IncrementalRefiner(builtin_cost_model("wcc"))
        new_v = base_graph.num_vertices + 3
        updated = maintainer.update(refined, insertions=[(0, new_v)])
        assert updated.placement(new_v)
        check_partition(updated)

    def test_drift_triggers_refinement(self, base_graph, refined):
        # Pile many insertions onto one hub so its fragment drifts.
        maintainer = IncrementalRefiner(
            builtin_cost_model("cn"), drift_tolerance=0.05
        )
        hub = 0
        targets = [
            v
            for v in base_graph.vertices
            if v != hub and not base_graph.has_edge(v, hub)
        ][:120]
        insertions = [(v, hub) for v in targets]
        updated = maintainer.update(refined, insertions=insertions)
        check_partition(updated)
        stats = maintainer.last_stats
        assert stats.inserted == len(insertions)
        assert stats.refined
        assert stats.cost_after <= stats.cost_before

    def test_no_drift_no_refinement(self, base_graph, refined):
        maintainer = IncrementalRefiner(
            builtin_cost_model("wcc"), drift_tolerance=5.0
        )
        updated = maintainer.update(
            refined, deletions=list(base_graph.edges())[:2]
        )
        assert not maintainer.last_stats.refined
        check_partition(updated)

    def test_cheaper_than_full_refinement_cost(self, base_graph, refined):
        """Maintained partition quality close to a from-scratch refine."""
        model = builtin_cost_model("wcc")
        maintainer = IncrementalRefiner(model)
        deletions = list(base_graph.edges())[:10]
        updated = maintainer.update(refined, deletions=deletions)

        fresh_graph = updated.graph
        from tests.conftest import make_edge_cut as mec

        scratch = E2H(model).refine(mec(fresh_graph, 4, seed=2))
        t_inc = CostTracker(updated, model)
        t_scr = CostTracker(scratch, model)
        assert t_inc.parallel_cost() <= 2.0 * t_scr.parallel_cost()
        t_inc.detach()
        t_scr.detach()
