"""Tests for the mutation-maintenance engine (DESIGN §15).

Covers :class:`MutationBatch` parsing/canonicalization, the
``apply_mutations`` driver over single, composite, and multi-partition
targets, and a differential suite that checks every refiner's
``refine_incremental`` against a full refinement pass on the same
mutated deployment: the incremental pass must stay valid, never
regress the cost it starts from, and do strictly less rescoring work.
"""

import numpy as np
import pytest

from repro.core.e2h import E2H
from repro.core.incremental import MutationBatch, apply_mutations
from repro.core.me2h import ME2H
from repro.core.mv2h import MV2H
from repro.core.parallel import ParE2H, ParV2H
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model, builtin_cost_models
from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, erdos_renyi, road_grid
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut


class TestMutationBatch:
    def test_parse_and_round_trip(self):
        text = "# comment\n+ 0 1\n\n- 2 3\n7\n"
        batch = MutationBatch.parse(text)
        assert len(batch) == 3
        assert batch.ops == (("+", 0, 1), ("-", 2, 3), ("v", 7, -1))
        assert MutationBatch.parse(batch.to_text()) == batch

    def test_digest_is_content_addressed(self):
        a = MutationBatch.parse("+ 0 1\n- 2 3")
        b = MutationBatch.parse("# different text, same ops\n+ 0 1\n- 2 3\n")
        c = MutationBatch.parse("+ 0 1")
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_parse_errors_carry_source_and_line(self):
        with pytest.raises(ValueError, match=r"<string>, line 2"):
            MutationBatch.parse("+ 0 1\n+ 0")
        with pytest.raises(ValueError, match="line 1"):
            MutationBatch.parse("+ 0 -1")
        with pytest.raises(ValueError, match="line 1"):
            MutationBatch.parse("* 0 1")
        with pytest.raises(ValueError, match="line 1"):
            MutationBatch.parse("+ a b")

    def test_from_file(self, tmp_path):
        path = tmp_path / "batch.txt"
        path.write_text("+ 0 2\n- 1 2\n")
        batch = MutationBatch.from_file(path)
        assert batch.ops == (("+", 0, 2), ("-", 1, 2))
        bad = tmp_path / "bad.txt"
        bad.write_text("nope nope nope\n")
        with pytest.raises(ValueError, match="bad.txt, line 1"):
            MutationBatch.from_file(bad)

    def test_apply_to_graph(self):
        g = Graph(3, [(0, 1), (1, 2)])
        batch = MutationBatch.parse("- 1 2\n+ 2 0\n4")
        dirty = batch.apply_to_graph(g)
        assert g == Graph(5, [(0, 1), (2, 0)])
        assert {2, 0, 1} <= dirty


class TestApplyMutations:
    def _graph(self, seed=3):
        return erdos_renyi(40, 120, directed=True, seed=seed)

    def test_single_partition_insert_delete(self):
        g = self._graph()
        partition = make_edge_cut(g, 4, seed=1)
        missing = next(
            (u, v)
            for u in range(g.num_vertices)
            for v in range(g.num_vertices)
            if u != v and not g.has_edge(u, v)
        )
        present = next(iter(g.edges()))
        batch = MutationBatch.parse(
            f"+ {missing[0]} {missing[1]}\n- {present[0]} {present[1]}"
        )
        dirty = apply_mutations(partition, batch)
        assert set(missing) <= dirty and set(present) <= dirty
        assert g.has_edge(*missing) and not g.has_edge(*present)
        check_partition(partition)
        # The inserted edge lives in exactly the fragments that host it.
        hosts = [
            fid
            for fid in range(partition.num_fragments)
            if partition.fragments[fid].has_edge(g.canonical_edge(*missing))
        ]
        assert len(hosts) == 1
        # The deleted edge is gone from every fragment.
        for fid in range(partition.num_fragments):
            assert not partition.fragments[fid].has_edge(
                g.canonical_edge(*present)
            )

    def test_vertex_ensure_grows_graph_and_partition(self):
        g = self._graph()
        partition = make_edge_cut(g, 4, seed=1)
        n0 = g.num_vertices
        dirty = apply_mutations(partition, MutationBatch.parse(f"{n0 + 2}"))
        assert g.num_vertices == n0 + 3
        assert {n0, n0 + 1, n0 + 2} <= dirty
        for v in (n0, n0 + 1, n0 + 2):
            assert partition.placement(v)
        check_partition(partition)

    def test_insert_implies_endpoints(self):
        g = self._graph()
        partition = make_edge_cut(g, 4, seed=1)
        n0 = g.num_vertices
        # Inserting an edge to an unseen id grows the graph; deleting
        # with an unknown endpoint is a no-op.
        dirty = apply_mutations(
            partition, MutationBatch.parse(f"+ 0 {n0 + 1}\n- 0 {n0 + 5}")
        )
        assert g.num_vertices == n0 + 2
        assert g.has_edge(0, n0 + 1)
        assert {0, n0, n0 + 1} <= dirty
        check_partition(partition)

    def test_routing_is_deterministic(self):
        batch = MutationBatch.parse("+ 0 30\n+ 5 17\n- 1 2")
        placements = []
        for _ in range(2):
            g = self._graph()
            partition = make_edge_cut(g, 4, seed=1)
            apply_mutations(partition, batch)
            placements.append(
                {v: tuple(sorted(partition.placement(v))) for v in (0, 30, 5, 17)}
            )
        assert placements[0] == placements[1]

    def test_composite_target(self):
        g = self._graph()
        models = builtin_cost_models(("cn", "pr"))
        composite = ME2H(models).refine(make_edge_cut(g, 3, seed=2))
        batch = MutationBatch.parse("+ 0 30\n- 0 1\n41")
        dirty = apply_mutations(composite, batch)
        assert dirty
        for name in composite.names:
            check_partition(composite.partition_for(name))
        # Index rebuilt over the mutated members: space accounting sane.
        assert composite.composite_replication_ratio() >= 1.0

    def test_sequence_target_shares_graph(self):
        g = self._graph()
        parts = [make_edge_cut(g, 3, seed=s) for s in (1, 2)]
        dirty = apply_mutations(parts, MutationBatch.parse("+ 0 30"))
        assert {0, 30} <= dirty
        for p in parts:
            check_partition(p)

    def test_rejects_mixed_graphs_and_empty_targets(self):
        a = make_edge_cut(self._graph(1), 3, seed=1)
        b = make_edge_cut(self._graph(2), 3, seed=1)
        with pytest.raises(ValueError, match="share one graph"):
            apply_mutations([a, b], MutationBatch.parse("+ 0 1"))
        with pytest.raises(ValueError, match="at least one"):
            apply_mutations([], MutationBatch.parse("+ 0 1"))


# ---------------------------------------------------------------------------
# Differential suite: refine_incremental vs full refinement, every
# refiner x three graph families x five seeds (ISSUE satellite 3).
# ---------------------------------------------------------------------------

FAMILIES = {
    "powerlaw": lambda seed: chung_lu_power_law(
        110, 5.0, exponent=2.1, directed=True, seed=seed
    ),
    "er": lambda seed: erdos_renyi(100, 300, directed=True, seed=seed),
    "grid": lambda seed: road_grid(9, 11, seed=seed),
}

SEEDS = (1, 2, 3, 4, 5)


def _mutation_batch(graph, rng, count=6):
    """Half deletions of existing edges, half fresh insertions."""
    edges = list(graph.edges())
    lines = []
    for e in rng.choice(len(edges), size=min(count // 2, len(edges)), replace=False):
        u, v = edges[int(e)]
        lines.append(f"- {u} {v}")
    n = graph.num_vertices
    added = 0
    while added < count - count // 2:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v and not graph.has_edge(u, v):
            lines.append(f"+ {u} {v}")
            added += 1
    return MutationBatch.parse("\n".join(lines))


def _full_refine(refiner, partition):
    """Run a refiner's full pass; normalize the (partition, stats) shape."""
    if isinstance(refiner, (ParE2H, ParV2H)):
        refined, profile = refiner.refine(partition)
        return refined, profile.stats
    if isinstance(refiner, (ME2H, MV2H)):
        composite = refiner.refine(partition)
        return composite, refiner.last_stats
    refined = refiner.refine(partition, in_place=True, capture_seed=True)
    return refined, refiner.last_stats


def _make_refiner(name):
    model = builtin_cost_model("pr")
    models = builtin_cost_models(("cn", "pr"))
    return {
        "e2h": lambda: (E2H(model), "edge"),
        "v2h": lambda: (V2H(model), "vertex"),
        "pare2h": lambda: (ParE2H(model), "edge"),
        "parv2h": lambda: (ParV2H(model), "vertex"),
        "me2h": lambda: (ME2H(models), "edge"),
        "mv2h": lambda: (MV2H(models), "vertex"),
    }[name]()


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize(
    "name", ["e2h", "v2h", "pare2h", "parv2h", "me2h", "mv2h"]
)
def test_incremental_matches_full_refinement(name, family):
    for seed in SEEDS:
        refiner, cut = _make_refiner(name)
        graph = FAMILIES[family](seed)
        make = make_edge_cut if cut == "edge" else make_vertex_cut
        base = make(graph, 3, seed=seed)
        refined, _ = _full_refine(refiner, base)

        rng = np.random.default_rng(100 + seed)
        batch = _mutation_batch(graph, rng)
        dirty = apply_mutations(refined, batch)
        assert dirty

        result = refiner.refine_incremental(refined, dirty)
        if isinstance(refiner, (ME2H, MV2H)):
            stats = refiner.last_stats
            members = [result.partition_for(n) for n in result.names]
            incs = stats.incremental.values()
        elif isinstance(refiner, (ParE2H, ParV2H)):
            result, profile = result
            stats = profile.stats
            members = [result]
            incs = [stats.incremental]
        else:
            stats = refiner.last_stats
            members = [result]
            incs = [stats.incremental]

        for member in members:
            check_partition(member)
        for inc in incs:
            assert inc is not None
            assert inc.dirty == len(dirty & set(range(graph.num_vertices)))
            assert inc.frontier >= inc.dirty
            assert 0 < inc.fragments <= 3

        # Scoped maintenance must do less rescoring work than starting
        # over: compare against a fresh full pass on a copy of the same
        # mutated deployment.
        if not isinstance(refiner, (ME2H, MV2H)):
            fresh, full_stats = _full_refine(
                type(refiner)(builtin_cost_model("pr")), members[0].copy()
            )
            check_partition(fresh)
            assert stats.rescoring_calls <= full_stats.rescoring_calls
