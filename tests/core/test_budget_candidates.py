"""Tests for budget estimation, fragment classification and GetCandidates."""

import pytest

from repro.core.budget import classify_fragments, compute_budget
from repro.core.candidates import bfs_order, get_candidates
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import constant_cost_model
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition, NodeRole

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture()
def skewed():
    # 6 vertices all homed in F0; F1 empty -> F0 overloaded.
    g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    p = HybridPartition.from_vertex_assignment(g, [0] * 6, 2)
    return g, p


class TestBudget:
    def test_budget_is_average(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        assert compute_budget(tracker) == pytest.approx(3.0)
        tracker.detach()

    def test_slack_scales_budget(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        assert compute_budget(tracker, slack=1.5) == pytest.approx(4.5)
        tracker.detach()

    def test_classification(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        over, under = classify_fragments(tracker, compute_budget(tracker))
        assert over == [0]
        assert under == [1]
        tracker.detach()

    def test_balanced_partition_all_underloaded(self, power_graph):
        p = make_edge_cut(power_graph, 4, seed=1)
        tracker = CostTracker(p, constant_cost_model())
        over, _under = classify_fragments(
            tracker, compute_budget(tracker, slack=1.2)
        )
        assert len(over) <= 1
        tracker.detach()


class TestBfsOrder:
    def test_covers_all_fragment_vertices(self, power_graph):
        p = make_edge_cut(power_graph, 3, seed=1)
        order = bfs_order(p, 0)
        assert set(order) == set(p.fragments[0].vertices())

    def test_connected_prefix(self, skewed):
        _g, p = skewed
        order = bfs_order(p, 0)
        # A path graph BFS from any seed yields contiguous vertices.
        assert len(order) == 6


class TestGetCandidates:
    def test_kept_prefix_within_budget(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        cands = get_candidates(tracker, 0, budget=3.0, role=NodeRole.ECUT)
        # 6 unit-cost vertices, budget 3 -> 3 kept, 3 candidates.
        assert len(cands) == 3
        tracker.detach()

    def test_zero_budget_marks_everything(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        cands = get_candidates(tracker, 0, budget=0.0)
        assert len(cands) == 6
        tracker.detach()

    def test_candidates_carry_incident_edges(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        cands = get_candidates(tracker, 0, budget=0.0)
        for v, edges in cands:
            assert set(edges) == set(p.fragments[0].incident(v))
        tracker.detach()

    def test_role_filter_vcut(self, power_graph):
        p = make_vertex_cut(power_graph, 3, seed=2)
        tracker = CostTracker(p, builtin_cost_model("tc"))
        cands = get_candidates(tracker, 0, budget=0.0, role=NodeRole.VCUT)
        for v, _edges in cands:
            assert p.role(v, 0) is NodeRole.VCUT
        tracker.detach()

    def test_custom_order_respected(self, skewed):
        _g, p = skewed
        tracker = CostTracker(p, constant_cost_model())
        order = [5, 4, 3, 2, 1, 0]
        cands = get_candidates(tracker, 0, budget=2.0, order=order)
        kept = {5, 4}
        assert all(v not in kept for v, _ in cands)
        tracker.detach()
