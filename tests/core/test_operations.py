"""Semantics tests for the refiners' move operations (Examples 9, 10, 12)."""

import pytest

from repro.core.operations import emigrate, split_migrate_edge, vmerge, vmigrate
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition, NodeRole
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.fixture()
def line_partition():
    # 0 -> 1 -> 2 -> 3, edge-cut: {0,1} in F0, {2,3} in F1.
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    p = HybridPartition.from_vertex_assignment(g, [0, 0, 1, 1], 2)
    return g, p


class TestEmigrate:
    def test_moves_all_edges_and_master(self, line_partition):
        g, p = line_partition
        emigrate(p, 1, 0, 1)
        check_partition(p)
        # Destination copy holds all of 1's edges and is the e-cut node.
        assert p.fragments[1].incident_count(1) == g.incident_edge_count(1)
        assert p.master(1) == 1
        assert p.role(1, 1) is NodeRole.ECUT

    def test_boundary_edge_kept_for_bearing_source_vertex(self, line_partition):
        g, p = line_partition
        emigrate(p, 1, 0, 1)
        # Vertex 0 computes in F0 and keeps (0,1) locally; 1 stays dummy.
        assert p.fragments[0].has_edge((0, 1))
        assert p.role(1, 0) is NodeRole.DUMMY
        assert p.role(0, 0) is NodeRole.ECUT

    def test_example9_shape(self, paper_g1):
        # Migrate target t3 (=7) from its home; sources keep locality.
        p = HybridPartition.from_vertex_assignment(
            paper_g1, [0, 0, 0, 1, 1, 0, 0, 0, 1, 1], 2
        )
        emigrate(p, 7, 0, 1)
        check_partition(p)
        assert p.role(7, 1) is NodeRole.ECUT
        # s1 (=0) keeps all its out-edges in F0.
        assert p.fragments[0].incident_count(0) == paper_g1.incident_edge_count(0)

    def test_isolated_vertex_moves(self):
        g = Graph(3, [(0, 1)])
        p = HybridPartition.from_vertex_assignment(g, [0, 0, 0], 2)
        emigrate(p, 2, 0, 1)
        check_partition(p)
        assert p.placement(2) == frozenset({1})

    def test_emigrate_reduces_source_cost_bearing_set(self, power_graph):
        p = make_edge_cut(power_graph, 3, seed=2)
        v = next(u for u in power_graph.vertices if p.designated_home(u) == 0)
        emigrate(p, v, 0, 1)
        check_partition(p)
        assert p.designated_home(v) == 1


class TestSplitMigrate:
    def test_edge_moves_without_duplication(self, line_partition):
        g, p = line_partition
        split_migrate_edge(p, 1, (1, 2), 0, 1)
        check_partition(p)
        assert not p.fragments[0].has_edge((1, 2))
        assert p.fragments[1].has_edge((1, 2))

    def test_vertex_becomes_vcut(self, paper_g1):
        p = HybridPartition.from_vertex_assignment(
            paper_g1, [0, 0, 0, 1, 1, 0, 0, 0, 1, 1], 2
        )
        # t2 (=6) has in-edges from s1,s2,s3,s4; split two of them off.
        edges = list(p.fragments[0].incident(6))[:2]
        for edge in edges:
            split_migrate_edge(p, 6, edge, 0, 1)
        check_partition(p)
        assert p.is_vcut_vertex(6)
        assert p.role(6, 0) is NodeRole.VCUT
        assert p.role(6, 1) is NodeRole.VCUT

    def test_same_fragment_noop(self, line_partition):
        _g, p = line_partition
        before = p.total_edge_copies()
        split_migrate_edge(p, 1, (1, 2), 0, 0)
        assert p.total_edge_copies() == before


class TestVMigrate:
    def test_reduces_replication(self, power_graph):
        p = make_vertex_cut(power_graph, 3, seed=3)
        v = next(u for u, hosts in p.vertex_fragments() if len(hosts) >= 2)
        hosts = sorted(p.placement(v))
        r_before = p.mirrors(v)
        vmigrate(p, v, hosts[0], hosts[1])
        check_partition(p)
        assert p.mirrors(v) == r_before - 1

    def test_requires_destination_copy(self, line_partition):
        _g, p = line_partition
        with pytest.raises(ValueError):
            vmigrate(p, 0, 0, 1)

    def test_same_fragment_rejected(self, line_partition):
        _g, p = line_partition
        with pytest.raises(ValueError, match="must differ"):
            vmigrate(p, 0, 0, 0)
        with pytest.raises(ValueError, match="must differ"):
            emigrate(p, 0, 0, 0)


class TestVMerge:
    def test_promotes_to_ecut(self, power_graph):
        p = make_vertex_cut(power_graph, 3, seed=4)
        v = next(u for u, _h in p.vertex_fragments() if p.is_vcut_vertex(u))
        dst = max(
            p.placement(v), key=lambda f: p.fragments[f].incident_count(v)
        )
        vmerge(p, v, dst)
        check_partition(p)
        assert p.is_ecut_vertex(v)
        assert p.designated_home(v) == dst
        for fid in p.placement(v):
            if fid != dst:
                assert p.role(v, fid) is NodeRole.DUMMY

    def test_example12_replication_for_neighbor(self):
        # v2-like scenario: merging pulls the missing edge while the far
        # endpoint's bearing copy keeps it (replication, Fig. 1(f)).
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], )
        p = HybridPartition(g, 2)
        p.add_edge_to(0, (0, 1))
        p.add_edge_to(1, (1, 2))
        p.add_edge_to(1, (2, 3))
        check_partition(p)
        assert p.is_vcut_vertex(1)
        vmerge(p, 1, 0)
        check_partition(p)
        assert p.is_ecut_vertex(1)
        # (1,2) still at F1 because vertex 2 computes there.
        assert p.fragments[1].has_edge((1, 2))
        assert p.fragments[0].has_edge((1, 2))
