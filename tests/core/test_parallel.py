"""Tests for the BSP-parallelized refiners (Section 5.3)."""

import pytest

from repro.core.parallel import ParE2H, ParME2H, ParMV2H, ParV2H
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model, builtin_cost_models
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut


class TestParE2H:
    def test_refines_and_profiles(self, power_graph):
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=11)
        refined, profile = ParE2H(model).refine(initial)
        check_partition(refined)
        assert profile.total_time > 0
        assert set(profile.phase_times) == {"setup", "emigrate", "esplit", "massign"}
        assert profile.stats.cost_after < profile.stats.cost_before

    def test_batch_size_affects_supersteps(self, power_graph):
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=11)
        _p1, small = ParE2H(model, batch_size=4).refine(initial)
        _p2, large = ParE2H(model, batch_size=256).refine(initial)
        assert sum(small.phase_supersteps.values()) >= sum(
            large.phase_supersteps.values()
        )

    def test_phase_flags(self, power_graph):
        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=11)
        _p, profile = ParE2H(model, enable_esplit=False).refine(initial)
        assert "esplit" not in profile.phase_times

    def test_comparable_quality_to_sequential(self, power_graph):
        from repro.core.e2h import E2H

        model = builtin_cost_model("cn")
        initial = make_edge_cut(power_graph, 4, seed=11)
        seq = E2H(model).refine(initial)
        par, _profile = ParE2H(model).refine(initial)
        t_seq = CostTracker(seq, model)
        t_par = CostTracker(par, model)
        assert t_par.parallel_cost() <= 1.5 * t_seq.parallel_cost()
        t_seq.detach()
        t_par.detach()


class TestParV2H:
    def test_refines_and_profiles(self, power_graph):
        model = builtin_cost_model("tc")
        initial = make_vertex_cut(power_graph, 4, seed=12)
        refined, profile = ParV2H(model).refine(initial)
        check_partition(refined)
        assert set(profile.phase_times) == {"setup", "vmigrate", "vmerge", "massign"}
        assert profile.stats.cost_after <= profile.stats.cost_before * 1.05

    def test_in_place(self, power_graph):
        model = builtin_cost_model("tc")
        initial = make_vertex_cut(power_graph, 4, seed=12)
        refined, _profile = ParV2H(model).refine(initial, in_place=True)
        assert refined is initial


class TestComposite:
    def test_parme2h(self, power_graph):
        models = builtin_cost_models(("cn", "pr"))
        initial = make_edge_cut(power_graph, 3, seed=13)
        composite, profile = ParME2H(models).refine(initial)
        for name in models:
            check_partition(composite.partition_for(name))
        assert profile.total_time > 0
        assert profile.composite_stats is not None

    def test_parmv2h(self, power_graph):
        models = builtin_cost_models(("cn", "pr"))
        initial = make_vertex_cut(power_graph, 3, seed=13)
        composite, profile = ParMV2H(models).refine(initial)
        for name in models:
            check_partition(composite.partition_for(name))
        assert set(profile.phase_times) == {"init", "vassign", "eassign", "massign"}
