"""Tests for the composite refiners ME2H and MV2H (Section 6)."""

import pytest

from repro.core.me2h import ME2H
from repro.core.mv2h import MV2H
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_models
from repro.partition.validation import check_partition

from tests.conftest import make_edge_cut, make_vertex_cut

BATCH = ("cn", "wcc", "pr")


@pytest.fixture(scope="module")
def models():
    return builtin_cost_models(BATCH)


class TestME2H:
    @pytest.fixture(scope="class")
    def composite(self, models):
        from repro.graph.generators import chung_lu_power_law

        graph = chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)
        initial = make_edge_cut(graph, 3, seed=8)
        return ME2H(models).refine(initial)

    def test_every_partition_valid(self, composite):
        for name in BATCH:
            check_partition(composite.partition_for(name))

    def test_composite_saves_space(self, composite):
        assert (
            composite.composite_replication_ratio()
            < composite.separate_storage_ratio()
        )
        assert composite.space_saving() > 0.0

    def test_each_partition_balanced_for_its_model(self, composite, models):
        for name in BATCH:
            partition = composite.partition_for(name)
            tracker = CostTracker(partition, models[name])
            costs = tracker.comp_costs()
            avg = sum(costs) / len(costs)
            # No fragment should be wildly above average after refinement.
            assert max(costs) <= 3.0 * max(avg, 1e-12)
            tracker.detach()

    def test_stats_recorded(self, models, power_graph):
        refiner = ME2H(models)
        refiner.refine(make_edge_cut(power_graph, 3, seed=9))
        stats = refiner.last_stats
        assert set(stats.budgets) == set(BATCH)
        assert stats.core_units > 0
        assert set(stats.phase_seconds) == {"init", "vassign", "eassign", "massign"}

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            ME2H({})


class TestMV2H:
    @pytest.fixture(scope="class")
    def composite(self, models):
        from repro.graph.generators import chung_lu_power_law

        graph = chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)
        initial = make_vertex_cut(graph, 3, seed=8)
        return MV2H(models).refine(initial)

    def test_every_partition_valid(self, composite):
        for name in BATCH:
            check_partition(composite.partition_for(name))

    def test_space_saving_positive(self, composite):
        assert composite.space_saving() > 0.0

    def test_vertex_cut_units_disjoint_before_vmerge(self, models, power_graph):
        # With VMerge disabled the outputs keep disjoint edge sets.
        refiner = MV2H(models, vmerge_passes=0)
        composite = refiner.refine(make_vertex_cut(power_graph, 3, seed=9))
        from repro.partition.validation import is_vertex_cut

        for name in BATCH:
            assert is_vertex_cut(composite.partition_for(name))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            MV2H({})
