"""Tests for metric variable extraction (Section 3.1)."""

import pytest

from repro.costmodel.features import (
    FEATURE_NAMES,
    hypothetical_ecut_features,
    vertex_features,
)
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition


@pytest.fixture()
def split_partition():
    # 0 -> 1, 2 -> 1, 1 -> 3 ; vertex 1's edges split across fragments.
    g = Graph(4, [(0, 1), (2, 1), (1, 3)])
    p = HybridPartition(g, 2)
    p.add_edge_to(0, (0, 1))
    p.add_edge_to(0, (2, 1))
    p.add_edge_to(1, (1, 3))
    return g, p


def test_feature_names_complete(split_partition):
    _g, p = split_partition
    features = vertex_features(p, 1, 0)
    assert set(features) == set(FEATURE_NAMES)


def test_local_vs_global_degrees(split_partition):
    _g, p = split_partition
    f0 = vertex_features(p, 1, 0)
    assert f0["d_in_L"] == 2
    assert f0["d_out_L"] == 0
    assert f0["d_in_G"] == 2
    assert f0["d_out_G"] == 1
    f1 = vertex_features(p, 1, 1)
    assert f1["d_in_L"] == 0
    assert f1["d_out_L"] == 1


def test_mirror_count_and_indicator(split_partition):
    _g, p = split_partition
    f0 = vertex_features(p, 1, 0)
    assert f0["r"] == 1  # copies in both fragments
    assert f0["I"] == 1.0  # v-cut copy is not an e-cut node


def test_ecut_indicator_zero_at_home(split_partition):
    g, p = split_partition
    f = vertex_features(p, 0, 0)
    assert f["I"] == 0.0
    assert f["d_L"] == f["d_G"] == 1


def test_master_indicator(split_partition):
    _g, p = split_partition
    assert vertex_features(p, 1, p.master(1))["M"] == 1.0
    other = ({0, 1} - {p.master(1)}).pop()
    assert vertex_features(p, 1, other)["M"] == 0.0


def test_average_degree_constant(split_partition):
    g, p = split_partition
    f = vertex_features(p, 0, 0)
    assert f["D"] == pytest.approx(g.num_edges / g.num_vertices)
    # Explicit override avoids recomputation.
    assert vertex_features(p, 0, 0, avg_degree=7.0)["D"] == 7.0


def test_hypothetical_ecut_features(split_partition):
    g, p = split_partition
    f = hypothetical_ecut_features(p, 1)
    assert f["d_in_L"] == g.in_degree(1)
    assert f["d_out_L"] == g.out_degree(1)
    assert f["I"] == 0.0
    assert f["M"] == 1.0
    assert f["d_L"] == f["d_G"]
