"""Tests for the runtime-calibrated model pipeline and its disk cache."""

import pytest

from repro.costmodel.model import CostModel
from repro.costmodel.trained import (
    ALGORITHMS,
    _load_cache,
    _save_cache,
    train_models,
)


@pytest.fixture(scope="module")
def pr_model():
    return train_models(["pr"], num_graphs=2)["pr"]


def test_trained_model_shape(pr_model):
    assert isinstance(pr_model, CostModel)
    assert "d_in_L" in pr_model.h.variables()


def test_trained_model_monotone_in_degree(pr_model):
    lo = pr_model.h.evaluate({"d_in_L": 1.0})
    hi = pr_model.h.evaluate({"d_in_L": 50.0})
    assert hi > lo


def test_cn_gate_matches_training_theta():
    model = train_models(["cn"], num_graphs=2)["cn"]
    assert model.gate == ("d_in_G", 300.0)
    assert model.h_value({v: 1000.0 for v in ("d_in_L", "d_in_G", "r", "M", "I", "D", "d_L", "d_G", "d_out_L", "d_out_G")}) == 0.0


def test_cache_round_trip(tmp_path, pr_model):
    path = str(tmp_path / "models.json")
    _save_cache({"pr": pr_model}, path)
    loaded = _load_cache(path)
    features = {"d_in_L": 7.0}
    assert loaded["pr"].h.evaluate(features) == pytest.approx(
        pr_model.h.evaluate(features)
    )
    assert loaded["pr"].gate == pr_model.gate


def test_cache_missing_file(tmp_path):
    assert _load_cache(str(tmp_path / "absent.json")) is None


def test_cache_corrupt_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert _load_cache(str(path)) is None


def test_algorithms_roster():
    assert set(ALGORITHMS) == {"cn", "tc", "wcc", "pr", "sssp"}
