"""Tests for the SGD cost-function learner (Section 4)."""

import numpy as np
import pytest

from repro.costmodel.polynomial import PolynomialCostFunction
from repro.costmodel.training import (
    SGDTrainer,
    fit_cost_function,
    msre,
    select_features,
    train_test_split,
)


def _synthetic_samples(fn, n=400, seed=0, noise=0.02):
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(n):
        x = float(rng.integers(1, 60))
        y = float(rng.integers(1, 30))
        target = fn(x, y) * (1.0 + noise * rng.standard_normal())
        samples.append(({"x": x, "y": y}, max(target, 1e-9)))
    return samples


class TestMsre:
    def test_zero_on_exact(self):
        t = np.array([1.0, 2.0])
        assert msre(t, t) == 0.0

    def test_relative_not_absolute(self):
        assert msre(np.array([2.0]), np.array([1.0])) == pytest.approx(1.0)
        assert msre(np.array([200.0]), np.array([100.0])) == pytest.approx(1.0)


class TestSplit:
    def test_split_sizes(self):
        samples = _synthetic_samples(lambda x, y: x)
        train, test = train_test_split(samples, 0.2, seed=1)
        assert len(train) == 320 and len(test) == 80

    def test_split_disjoint_and_complete(self):
        samples = _synthetic_samples(lambda x, y: x, n=50)
        train, test = train_test_split(samples, 0.2, seed=1)
        assert len(train) + len(test) == 50


class TestLearning:
    def test_recovers_linear_relationship(self):
        samples = _synthetic_samples(lambda x, y: 3.0 * x + 5.0)
        report = fit_cost_function(samples, ["x"], degree=1, name="lin")
        assert report.test_msre < 0.01
        # Coefficient of x should be near 3.
        coeffs = {t.key(): t.coefficient for t in report.function.terms}
        assert coeffs[(("x", 1),)] == pytest.approx(3.0, rel=0.15)

    def test_recovers_quadratic(self):
        samples = _synthetic_samples(lambda x, y: 0.5 * x * x + x)
        report = fit_cost_function(samples, ["x"], degree=2, name="quad")
        assert report.test_msre < 0.01

    def test_recovers_interaction_term(self):
        samples = _synthetic_samples(lambda x, y: 2.0 * x * y)
        report = fit_cost_function(samples, ["x", "y"], degree=2, name="prod")
        assert report.test_msre < 0.02

    def test_unit_scale_invariance(self):
        base = _synthetic_samples(lambda x, y: 4.0 * x)
        scaled = [(f, t * 1e-6) for f, t in base]
        r1 = fit_cost_function(base, ["x"], degree=1)
        r2 = fit_cost_function(scaled, ["x"], degree=1)
        assert r2.test_msre == pytest.approx(r1.test_msre, abs=0.01)

    def test_closed_form_only(self):
        samples = _synthetic_samples(lambda x, y: 2.0 * x)
        trainer = SGDTrainer(epochs=0)
        report = fit_cost_function(samples, ["x"], degree=1, trainer=trainer)
        assert report.epochs_run == 0
        assert report.test_msre < 0.01

    def test_l1_prunes_irrelevant_variable(self):
        samples = _synthetic_samples(lambda x, y: 5.0 * x)
        trainer = SGDTrainer(epochs=80, l1=5e-3)
        report = fit_cost_function(
            samples, ["x", "y"], degree=1, trainer=trainer, prune_below=1e-3
        )
        assert "y" not in report.function.variables()
        assert report.test_msre < 0.05

    def test_nonnegative_projection(self):
        samples = _synthetic_samples(lambda x, y: 2.0 * x)
        report = fit_cost_function(samples, ["x", "y"], degree=2)
        assert all(t.coefficient >= 0 for t in report.function.terms)

    def test_empty_samples_rejected(self):
        trainer = SGDTrainer()
        tpl = PolynomialCostFunction.expansion(["x"], 1)
        with pytest.raises(ValueError):
            trainer.fit(tpl, [])

    def test_report_fields(self):
        samples = _synthetic_samples(lambda x, y: x)
        report = fit_cost_function(samples, ["x"], degree=1, name="h_x")
        assert report.num_train == 320
        assert report.num_test == 80
        assert report.training_time > 0
        assert "h_x" in str(report)


class TestFeatureSelection:
    def test_selects_correlated_variable(self):
        samples = _synthetic_samples(lambda x, y: 10.0 * x + 0.01 * y)
        top = select_features(samples, ["x", "y"], top_k=1)
        assert top == ["x"]

    def test_handles_constant_column(self):
        samples = [({"x": 1.0, "c": 5.0}, float(i + 1)) for i in range(20)]
        top = select_features(samples, ["x", "c"], top_k=2)
        assert set(top) == {"x", "c"}

    def test_empty_samples(self):
        assert select_features([], ["a", "b"], top_k=1) == ["a"]
