"""Tests for training-data collection from instrumented runs."""

import pytest

from repro.costmodel.collection import (
    collect_training_data,
    default_training_graphs,
)
from repro.costmodel.features import FEATURE_NAMES
from repro.graph.generators import chung_lu_power_law


@pytest.fixture(scope="module")
def pr_samples():
    graphs = [chung_lu_power_law(150, 5.0, seed=21)]
    return collect_training_data(
        "pr", graphs, num_fragments=3, seed=1, algorithm_params={"iterations": 2}
    )


def test_comp_samples_nonempty(pr_samples):
    comp, _comm = pr_samples
    assert len(comp) > 50


def test_samples_have_full_feature_vectors(pr_samples):
    comp, comm = pr_samples
    for features, cost in comp[:20] + comm[:20]:
        assert set(features) == set(FEATURE_NAMES)
        assert cost > 0


def test_comm_samples_only_from_replicated_vertices(pr_samples):
    _comp, comm = pr_samples
    assert comm, "expected communication samples"
    assert all(f["r"] >= 1 for f, _t in comm)


def test_pr_comp_cost_tracks_local_in_degree(pr_samples):
    comp, _comm = pr_samples
    # Two iterations of PR charge ~2 ops per local in-edge.
    degree_2 = [t for f, t in comp if f["d_in_L"] == 2]
    degree_8 = [t for f, t in comp if f["d_in_L"] == 8]
    if degree_2 and degree_8:
        assert (sum(degree_8) / len(degree_8)) > (sum(degree_2) / len(degree_2))


def test_default_training_roster():
    graphs = default_training_graphs(seed=0, scale=1)
    assert len(graphs) == 10
    directed = sum(1 for g in graphs if g.directed)
    assert 0 < directed < 10  # mixed directedness
    assert len({g.num_vertices for g in graphs}) > 1


def test_collection_deterministic():
    graphs = [chung_lu_power_law(80, 4.0, seed=5)]
    a = collect_training_data("wcc", graphs, num_fragments=2, seed=3)
    b = collect_training_data("wcc", graphs, num_fragments=2, seed=3)
    assert a == b
