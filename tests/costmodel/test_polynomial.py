"""Unit tests for polynomial cost functions."""

import pytest

from repro.costmodel.polynomial import Monomial, PolynomialCostFunction


class TestMonomial:
    def test_constant(self):
        m = Monomial(3.0)
        assert m.evaluate({}) == 3.0
        assert m.basis({}) == 1.0
        assert m.degree() == 0

    def test_linear_and_power(self):
        m = Monomial(2.0, {"x": 1, "y": 2})
        assert m.evaluate({"x": 3.0, "y": 2.0}) == pytest.approx(24.0)
        assert m.basis({"x": 3.0, "y": 2.0}) == pytest.approx(12.0)
        assert m.degree() == 3

    def test_key_is_order_independent(self):
        a = Monomial(1.0, {"x": 1, "y": 2})
        b = Monomial(5.0, {"y": 2, "x": 1})
        assert a.key() == b.key()

    def test_str(self):
        assert "x^2" in str(Monomial(1.0, {"x": 2}))


class TestExpansion:
    def test_degree_two_term_count(self):
        poly = PolynomialCostFunction.expansion(["x", "y"], 2)
        # 1, x, y, x^2, xy, y^2
        assert len(poly.terms) == 6

    def test_degree_three_single_var(self):
        poly = PolynomialCostFunction.expansion(["x"], 3)
        assert len(poly.terms) == 4

    def test_no_constant(self):
        poly = PolynomialCostFunction.expansion(["x"], 1, include_constant=False)
        assert len(poly.terms) == 1
        assert poly.terms[0].powers == {"x": 1}

    def test_no_duplicate_terms(self):
        poly = PolynomialCostFunction.expansion(["x", "y", "z"], 3)
        keys = [t.key() for t in poly.terms]
        assert len(keys) == len(set(keys))


class TestEvaluation:
    def test_evaluate_sum(self):
        poly = PolynomialCostFunction(
            [Monomial(1.0, {}), Monomial(2.0, {"x": 1}), Monomial(0.5, {"x": 2})]
        )
        assert poly.evaluate({"x": 2.0}) == pytest.approx(1 + 4 + 2)
        assert poly({"x": 2.0}) == poly.evaluate({"x": 2.0})

    def test_with_coefficients(self):
        poly = PolynomialCostFunction.expansion(["x"], 1)
        new = poly.with_coefficients([5.0, 7.0])
        assert new.evaluate({"x": 1.0}) == pytest.approx(12.0)
        # original untouched
        assert poly.evaluate({"x": 1.0}) == pytest.approx(2.0)

    def test_with_coefficients_length_check(self):
        poly = PolynomialCostFunction.expansion(["x"], 1)
        with pytest.raises(ValueError):
            poly.with_coefficients([1.0])

    def test_pruned(self):
        poly = PolynomialCostFunction(
            [Monomial(0.0, {"x": 1}), Monomial(2.0, {"x": 2})]
        )
        pruned = poly.pruned()
        assert len(pruned.terms) == 1
        assert pruned.terms[0].powers == {"x": 2}

    def test_pruned_never_empty(self):
        poly = PolynomialCostFunction([Monomial(0.0, {"x": 1})])
        assert len(poly.pruned().terms) == 1

    def test_variables(self):
        poly = PolynomialCostFunction(
            [Monomial(1.0, {"a": 1}), Monomial(0.0, {"b": 1})]
        )
        assert poly.variables() == ["a"]


class TestSerialization:
    def test_round_trip(self):
        poly = PolynomialCostFunction(
            [Monomial(1.5, {"x": 2, "y": 1}), Monomial(0.25, {})], name="h_test"
        )
        clone = PolynomialCostFunction.from_dict(poly.to_dict())
        assert clone.name == "h_test"
        features = {"x": 3.0, "y": 4.0}
        assert clone.evaluate(features) == pytest.approx(poly.evaluate(features))
