"""Cross-checks between the incremental tracker and the plain CostModel
evaluation after the full high-level refiner pipelines — the strongest
guard against bookkeeping drift."""

import pytest

from repro.core.e2h import E2H
from repro.core.tracker import CostTracker
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model

from tests.conftest import make_edge_cut, make_vertex_cut


@pytest.mark.parametrize("alg", ["cn", "tc", "wcc", "pr", "sssp"])
def test_tracker_exact_after_e2h(alg, power_graph):
    model = builtin_cost_model(alg)
    partition = make_edge_cut(power_graph, 4, seed=21)
    tracker = CostTracker(partition, model)
    E2H(model).refine(partition, in_place=True)
    for fid in range(4):
        assert tracker.comp_cost(fid) == pytest.approx(
            model.fragment_comp_cost(partition, fid), abs=1e-9
        )
        assert tracker.comm_cost(fid) == pytest.approx(
            model.fragment_comm_cost(partition, fid), abs=1e-9
        )
    tracker.detach()


@pytest.mark.parametrize("alg", ["cn", "tc", "pr"])
def test_tracker_exact_after_v2h(alg, power_graph):
    model = builtin_cost_model(alg)
    partition = make_vertex_cut(power_graph, 4, seed=22)
    tracker = CostTracker(partition, model)
    V2H(model).refine(partition, in_place=True)
    for fid in range(4):
        assert tracker.comp_cost(fid) == pytest.approx(
            model.fragment_comp_cost(partition, fid), abs=1e-9
        )
        assert tracker.comm_cost(fid) == pytest.approx(
            model.fragment_comm_cost(partition, fid), abs=1e-9
        )
    tracker.detach()


def test_chained_refinements_keep_tracker_exact(power_graph):
    model = builtin_cost_model("wcc")
    partition = make_edge_cut(power_graph, 4, seed=23)
    tracker = CostTracker(partition, model)
    for _ in range(2):
        E2H(model).refine(partition, in_place=True)
    assert tracker.parallel_cost() == pytest.approx(
        max(model.fragment_cost(partition, fid) for fid in range(4)), abs=1e-9
    )
    tracker.detach()
