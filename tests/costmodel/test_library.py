"""Tests for the built-in Table 5 cost models."""

import pytest

from repro.costmodel.library import ALGORITHMS, builtin_cost_model, builtin_cost_models


def test_all_five_models_available():
    models = builtin_cost_models()
    assert set(models) == set(ALGORITHMS)


def test_unknown_algorithm_rejected():
    with pytest.raises(KeyError):
        builtin_cost_model("nope")


def test_case_insensitive():
    assert builtin_cost_model("PR").name == "pr"


def test_cn_h_dominated_by_degree_product():
    model = builtin_cost_model("cn")
    low = model.h.evaluate({"d_in_L": 1, "d_in_G": 1})
    high = model.h.evaluate({"d_in_L": 100, "d_in_G": 100})
    assert high / low > 1000  # quadratic growth


def test_tc_g_zero_for_ecut_nodes():
    model = builtin_cost_model("tc")
    features = {"d_G": 50.0, "r": 3.0, "I": 0.0}
    assert model.g.evaluate(features) == 0.0
    features["I"] = 1.0
    assert model.g.evaluate(features) > 0.0


def test_pr_h_linear_in_local_in_degree():
    model = builtin_cost_model("pr")
    f1 = model.h.evaluate({"d_in_L": 10})
    f2 = model.h.evaluate({"d_in_L": 20})
    base = model.h.evaluate({"d_in_L": 0})
    assert f2 - base == pytest.approx(2 * (f1 - base))


def test_sssp_h_uses_out_degree():
    model = builtin_cost_model("sssp")
    assert "d_out_L" in model.h.variables()


def test_wcc_g_increasing_in_mirrors():
    model = builtin_cost_model("wcc")
    assert model.g.evaluate({"r": 3}) > model.g.evaluate({"r": 1})


def test_all_h_nonnegative_on_typical_features():
    features = {
        "d_in_L": 5.0, "d_out_L": 5.0, "d_in_G": 8.0, "d_out_G": 8.0,
        "r": 1.0, "D": 10.0, "I": 1.0, "d_L": 10.0, "d_G": 16.0, "M": 1.0,
    }
    for name in ALGORITHMS:
        model = builtin_cost_model(name)
        assert model.h.evaluate(features) > 0.0
