"""Tests for CostModel fragment-cost evaluation (Eqs. 1-3)."""

import pytest

from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import CostModel, constant_cost_model
from repro.costmodel.polynomial import Monomial, PolynomialCostFunction
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition

from tests.conftest import make_edge_cut


@pytest.fixture()
def star_partition():
    # Star: 1..4 -> 0; hub home in F0, leaves split between fragments.
    g = Graph(5, [(1, 0), (2, 0), (3, 0), (4, 0)])
    p = HybridPartition.from_vertex_assignment(g, [0, 0, 0, 1, 1], 2)
    return g, p


def _linear_in_degree_model() -> CostModel:
    h = PolynomialCostFunction([Monomial(1.0, {"d_in_L": 1})], "h")
    g = PolynomialCostFunction([Monomial(1.0, {"r": 1})], "g")
    return CostModel("test", h, g)


class TestComputationCost:
    def test_dummies_excluded(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        # Hub (in-degree 4) bears cost only at its home F0.
        assert model.fragment_comp_cost(p, 0) == pytest.approx(4.0)
        # F1 holds leaves (in-degree 0) and a dummy hub copy.
        assert model.fragment_comp_cost(p, 1) == pytest.approx(0.0)

    def test_vertex_comp_cost_zero_for_dummy(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        assert model.vertex_comp_cost(p, 0, 1) == 0.0
        assert model.vertex_comp_cost(p, 0, 0) == pytest.approx(4.0)

    def test_constant_model_counts_bearing_copies(self, power_graph):
        p = make_edge_cut(power_graph, 4)
        model = constant_cost_model()
        total = sum(model.fragment_comp_cost(p, i) for i in range(4))
        # Edge-cut: exactly one bearing copy per vertex.
        assert total == pytest.approx(power_graph.num_vertices)


class TestCommunicationCost:
    def test_masters_only(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        # Hub (master at F0, r=1) charges F0; leaves 3 and 4 get dummy
        # copies at the hub's home, so their masters at F1 charge 1 each.
        assert model.fragment_comm_cost(p, 0) == pytest.approx(1.0)
        assert model.fragment_comm_cost(p, 1) == pytest.approx(2.0)

    def test_master_move_moves_charge(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        p.set_master(0, 1)
        assert model.fragment_comm_cost(p, 0) == 0.0
        assert model.fragment_comm_cost(p, 1) == pytest.approx(3.0)

    def test_comm_cost_if_master_at(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        assert model.comm_cost_if_master_at(p, 0, 1) == pytest.approx(1.0)


class TestGate:
    def test_gated_vertex_costs_zero(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        gated = CostModel(model.name, model.h, model.g, gate=("d_in_G", 3.0))
        # Hub in-degree 4 exceeds the gate.
        assert gated.fragment_comp_cost(p, 0) == 0.0
        assert gated.fragment_comm_cost(p, 0) == 0.0

    def test_gate_passes_low_degree(self):
        g = Graph(3, [(0, 1), (0, 2)])
        p = HybridPartition.from_vertex_assignment(g, [0, 0, 1], 2)
        model = _linear_in_degree_model()
        gated = CostModel(model.name, model.h, model.g, gate=("d_in_G", 3.0))
        assert gated.fragment_comp_cost(p, 0) == pytest.approx(1.0)


class TestMasterDelta:
    def test_zero_without_m_terms(self, star_partition):
        _g, p = star_partition
        model = _linear_in_degree_model()
        assert model.comp_master_delta(p, 0, 0) == 0.0

    def test_positive_with_m_terms(self, star_partition):
        _g, p = star_partition
        h = PolynomialCostFunction(
            [Monomial(1.0, {"M": 1, "d_in_G": 1})], "h"
        )
        model = CostModel("m", h, _linear_in_degree_model().g)
        assert model.comp_master_delta(p, 0, 0) == pytest.approx(4.0)

    def test_zero_for_dummy_copy(self, star_partition):
        _g, p = star_partition
        h = PolynomialCostFunction([Monomial(1.0, {"M": 1})], "h")
        model = CostModel("m", h, _linear_in_degree_model().g)
        assert model.comp_master_delta(p, 0, 1) == 0.0


class TestBuiltinAndParallel:
    def test_parallel_cost_is_max(self, power_graph):
        p = make_edge_cut(power_graph, 4)
        model = builtin_cost_model("pr")
        per_fragment = [model.fragment_cost(p, i) for i in range(4)]
        assert model.parallel_cost(p) == pytest.approx(max(per_fragment))

    def test_describe_mentions_both_functions(self):
        model = builtin_cost_model("cn")
        text = model.describe()
        assert "h_cn" in text and "g_cn" in text
