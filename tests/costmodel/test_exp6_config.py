"""Consistency tests: Exp-6 must train with the same configuration the
harness's runtime-calibrated models use (one pipeline, not two)."""

from repro.costmodel import trained
from repro.eval.experiments import exp6


def test_exp6_shares_trained_variable_sets():
    assert exp6.H_VARIABLES is trained.H_VARIABLES
    assert exp6.G_VARIABLES is trained.G_VARIABLES


def test_every_algorithm_has_h_and_g_config():
    for name in trained.ALGORITHMS:
        assert name in trained.H_VARIABLES
        assert name in trained.G_VARIABLES
        assert name in trained.H_DEGREE


def test_cn_trains_with_theta_and_cubic_terms():
    # The CN variant deployed in the evaluation uses θ = 300; its master
    # merge cost is cubic (M * d²), which degree 2 cannot express.
    assert trained.TRAIN_PARAMS["cn"]["theta"] == 300
    assert trained.H_DEGREE["cn"] == 3
    assert "M" in trained.H_VARIABLES["cn"]


def test_feature_names_cover_all_configured_variables():
    from repro.costmodel.features import FEATURE_NAMES

    used = set()
    for variables in list(trained.H_VARIABLES.values()) + list(
        trained.G_VARIABLES.values()
    ):
        used.update(variables)
    assert used <= set(FEATURE_NAMES)
