"""Shared invariant suite for every baseline partitioner.

Each of the 11 registered baselines (the paper's Table 3 roster) is run
on a shared grid of generated graphs and checked for the three
properties any partitioner must satisfy regardless of strategy:

* **coverage** — the structural invariants of
  :func:`~repro.partition.validation.check_partition` (every edge hosted,
  placement/master indexes consistent, no orphan copies);
* **balance** — the cut family's balance factor stays under an
  empirically calibrated per-partitioner bound (measured worst case
  across this grid with ~2x headroom, so a regression that doubles the
  skew fails while normal jitter does not);
* **determinism under seed** — two runs with identically seeded
  instances produce byte-equal serialized partitions.
"""

from __future__ import annotations

import inspect

import pytest

from repro.graph.generators import chung_lu_power_law, road_grid
from repro.partition.quality import edge_balance_factor, vertex_balance_factor
from repro.partition.serialize import partition_to_dict
from repro.partition.validation import check_partition
from repro.partitioners.base import PARTITIONER_NAMES, get_partitioner

ALL_NAMES = sorted(PARTITIONER_NAMES)

#: Calibrated balance ceilings: (metric, bound).  Edge-cut partitioners
#: balance vertices, vertex-cut partitioners balance edges, hybrids are
#: held to the looser vertex-side bound their design targets.
BALANCE_BOUNDS = {
    "dbh": (edge_balance_factor, 0.5),
    "fennel": (vertex_balance_factor, 0.75),
    "ginger": (vertex_balance_factor, 1.5),
    "grid": (edge_balance_factor, 0.5),
    "hash": (vertex_balance_factor, 0.5),
    "hdrf": (edge_balance_factor, 0.5),
    "ldg": (vertex_balance_factor, 1.2),
    "metis": (vertex_balance_factor, 0.75),
    "ne": (edge_balance_factor, 0.5),
    "topox": (vertex_balance_factor, 2.5),
    "xtrapulp": (vertex_balance_factor, 1.2),
}

_GRAPHS = {
    "powerlaw_directed": lambda: chung_lu_power_law(
        300, 6.0, exponent=2.1, directed=True, seed=7
    ),
    "powerlaw_undirected": lambda: chung_lu_power_law(
        200, 6.0, exponent=2.2, directed=False, seed=9
    ),
    "road_grid": lambda: road_grid(8, 8, seed=1),
}


@pytest.fixture(scope="module", params=sorted(_GRAPHS))
def invariant_graph(request):
    """Shared graph grid every invariant below is checked against."""
    return _GRAPHS[request.param]()


@pytest.fixture(scope="module", params=(2, 4))
def num_fragments(request):
    return request.param


def _seeded(name: str, seed: int):
    """Instantiate ``name`` with an explicit seed where supported."""
    factory_params = inspect.signature(
        type(get_partitioner(name)).__init__
    ).parameters
    if "seed" in factory_params:
        return get_partitioner(name, seed=seed)
    return get_partitioner(name)


def test_registry_matches_paper_roster():
    assert ALL_NAMES == sorted(BALANCE_BOUNDS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_coverage(name, invariant_graph, num_fragments):
    """Structural invariants hold: every edge hosted, indexes coherent."""
    partition = get_partitioner(name).partition(invariant_graph, num_fragments)
    check_partition(partition)
    assert partition.num_fragments == num_fragments
    hosted = sum(f.num_edges for f in partition.fragments)
    assert hosted >= invariant_graph.num_edges  # replication only adds


@pytest.mark.parametrize("name", ALL_NAMES)
def test_balance_bound(name, invariant_graph, num_fragments):
    """The cut family's balance factor stays under the calibrated ceiling."""
    metric, bound = BALANCE_BOUNDS[name]
    partition = get_partitioner(name).partition(invariant_graph, num_fragments)
    factor = metric(partition)
    assert factor <= bound, (
        f"{name}: {metric.__name__}={factor:.3f} exceeds calibrated "
        f"bound {bound}"
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_deterministic_under_seed(name, invariant_graph, num_fragments):
    """Identically seeded instances serialize to byte-equal partitions."""
    first = _seeded(name, seed=42).partition(invariant_graph, num_fragments)
    second = _seeded(name, seed=42).partition(invariant_graph, num_fragments)
    assert partition_to_dict(first) == partition_to_dict(second)


@pytest.mark.parametrize("name", sorted(BALANCE_BOUNDS))
def test_default_instance_deterministic(name, invariant_graph):
    """Even without explicit seeding, default instances are reproducible."""
    first = get_partitioner(name).partition(invariant_graph, 4)
    second = get_partitioner(name).partition(invariant_graph, 4)
    assert partition_to_dict(first) == partition_to_dict(second)
