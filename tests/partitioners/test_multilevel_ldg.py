"""Tests for the METIS-style multilevel and LDG partitioners."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import (
    chung_lu_power_law,
    clique_collection,
    path_graph,
    road_grid,
    star_graph,
)
from repro.partition.quality import edge_balance_factor, vertex_balance_factor
from repro.partition.validation import check_partition, is_edge_cut
from repro.partitioners.base import get_partitioner
from repro.partitioners.multilevel import (
    MultilevelEdgeCut,
    _build_base_level,
    _coarsen,
)

import numpy as np


class TestCoarsening:
    def test_base_level_symmetric_adjacency(self):
        g = Graph(3, [(0, 1), (1, 2)])
        level = _build_base_level(g)
        assert level.adjacency[0] == {1: 1}
        assert level.adjacency[1] == {0: 1, 2: 1}

    def test_coarsening_shrinks_path(self):
        g = path_graph(16)
        level = _build_base_level(g)
        coarse = _coarsen(level, np.random.default_rng(0))
        # Randomized matching rarely achieves the perfect 2x, but must
        # shrink substantially and conserve total vertex weight.
        assert 8 <= coarse.num_vertices <= 12
        assert sum(coarse.vertex_weight) == 16

    def test_weights_accumulate(self):
        g = clique_collection([4, 4])
        level = _build_base_level(g)
        coarse = _coarsen(level, np.random.default_rng(1))
        assert sum(coarse.vertex_weight) == 8
        assert max(coarse.vertex_weight) == 2

    def test_disconnected_cliques_never_merge_across(self):
        g = clique_collection([3, 3])
        level = _build_base_level(g)
        coarse = _coarsen(level, np.random.default_rng(2))
        # No coarse vertex mixes members of both cliques (no edges across).
        members = {}
        for v in range(6):
            members.setdefault(coarse.parent_of_fine[v], set()).add(v // 3)
        assert all(len(cliques) == 1 for cliques in members.values())


class TestMultilevelPartition:
    def test_valid_edge_cut(self):
        g = chung_lu_power_law(800, 8.0, seed=9)
        p = MultilevelEdgeCut().partition(g, 4)
        check_partition(p)
        assert is_edge_cut(p)

    def test_better_edge_balance_than_streaming(self):
        g = chung_lu_power_law(1500, 8.0, seed=10)
        metis = get_partitioner("metis").partition(g, 4)
        fennel = get_partitioner("fennel").partition(g, 4)
        assert edge_balance_factor(metis) < edge_balance_factor(fennel)

    def test_grid_graph_cut_quality(self):
        # On a 2-D grid a multilevel cut should be near-planar: the cut
        # edge fraction must stay small.
        g = road_grid(20, 20)
        p = MultilevelEdgeCut().partition(g, 2)
        duplicated = p.total_edge_copies() - g.num_edges
        assert duplicated < 0.2 * g.num_edges

    def test_weight_balance_respected(self):
        g = chung_lu_power_law(600, 6.0, seed=11)
        p = MultilevelEdgeCut(balance=1.05).partition(g, 3)
        homes = [0] * 3
        for v in g.vertices:
            homes[p.designated_home(v)] += 1
        assert max(homes) <= 1.15 * g.num_vertices / 3

    def test_star_graph_no_infinite_loop(self):
        # Matching stalls on stars (hub can match only one leaf).
        g = star_graph(200).as_undirected()
        p = MultilevelEdgeCut(coarsen_to=16).partition(g, 2)
        check_partition(p)

    def test_empty_graph(self):
        p = MultilevelEdgeCut().partition(Graph(0, []), 2)
        assert p.num_fragments == 2

    def test_deterministic(self):
        g = chung_lu_power_law(400, 6.0, seed=12)
        a = MultilevelEdgeCut(seed=3).partition(g, 4)
        b = MultilevelEdgeCut(seed=3).partition(g, 4)
        assert [set(f.edges()) for f in a.fragments] == [
            set(f.edges()) for f in b.fragments
        ]


class TestLDG:
    def test_valid_edge_cut(self, power_graph):
        p = get_partitioner("ldg").partition(power_graph, 4)
        check_partition(p)
        assert is_edge_cut(p)

    def test_capacity_respected(self, power_graph):
        p = get_partitioner("ldg", slack=1.1).partition(power_graph, 4)
        homes = [0] * 4
        for v in power_graph.vertices:
            homes[p.designated_home(v)] += 1
        assert max(homes) <= 1.1 * power_graph.num_vertices / 4 + 1

    def test_custom_stream_order(self, power_graph):
        order = list(reversed(range(power_graph.num_vertices)))
        p = get_partitioner("ldg", order=order).partition(power_graph, 4)
        check_partition(p)

    def test_registered(self):
        from repro.partitioners.base import PARTITIONER_NAMES

        assert "ldg" in PARTITIONER_NAMES
        assert "metis" in PARTITIONER_NAMES
