"""Cross-cutting tests every registered partitioner must satisfy."""

import pytest

from repro.partition.quality import (
    edge_balance_factor,
    edge_replication_ratio,
    vertex_balance_factor,
)
from repro.partition.validation import check_partition, is_edge_cut, is_vertex_cut
from repro.partitioners.base import PARTITIONER_NAMES, get_partitioner

ALL_NAMES = sorted(PARTITIONER_NAMES)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_output_is_valid_partition(name, power_graph):
    partition = get_partitioner(name).partition(power_graph, 4)
    check_partition(partition)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_respects_fragment_count(name, power_graph):
    partition = get_partitioner(name).partition(power_graph, 3)
    assert partition.num_fragments == 3


@pytest.mark.parametrize("name", ALL_NAMES)
def test_deterministic(name, power_graph):
    a = get_partitioner(name).partition(power_graph, 4)
    b = get_partitioner(name).partition(power_graph, 4)
    assert [set(f.edges()) for f in a.fragments] == [
        set(f.edges()) for f in b.fragments
    ]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_single_fragment_trivial(name, power_graph):
    partition = get_partitioner(name).partition(power_graph, 1)
    check_partition(partition)
    assert partition.fragments[0].num_edges == power_graph.num_edges


@pytest.mark.parametrize("name", ["hash", "fennel", "xtrapulp"])
def test_edge_cut_family(name, power_graph):
    partition = get_partitioner(name).partition(power_graph, 4)
    assert is_edge_cut(partition)
    assert get_partitioner(name).cut_type == "edge"


@pytest.mark.parametrize("name", ["grid", "ne", "dbh", "hdrf", "ginger", "topox"])
def test_disjoint_edge_family(name, power_graph):
    partition = get_partitioner(name).partition(power_graph, 4)
    assert is_vertex_cut(partition)
    assert edge_replication_ratio(partition) == pytest.approx(1.0)


def test_unknown_partitioner_rejected():
    with pytest.raises(KeyError):
        get_partitioner("metis9000")


def test_registry_contains_paper_roster():
    for name in ("xtrapulp", "fennel", "grid", "ne", "ginger", "topox"):
        assert name in PARTITIONER_NAMES


class TestQualityCharacteristics:
    """Each baseline's signature behaviour (Table 3's qualitative shape)."""

    def test_hash_balances_vertices(self, power_graph):
        p = get_partitioner("hash").partition(power_graph, 4)
        assert vertex_balance_factor(p) < 0.3

    def test_fennel_respects_capacity(self, power_graph):
        p = get_partitioner("fennel", slack=1.1).partition(power_graph, 4)
        cap = 1.1 * power_graph.num_vertices / 4
        # Count only home (e-cut designated) vertices against capacity.
        homes = [0] * 4
        for v in power_graph.vertices:
            homes[p.designated_home(v)] += 1
        assert max(homes) <= cap + 1

    def test_grid_replication_bound(self, power_graph):
        p = get_partitioner("grid").partition(power_graph, 4)
        # 2x2 grid: r + c - 1 = 3 copies max per vertex.
        for v, hosts in p.vertex_fragments():
            assert len(hosts) <= 3

    def test_ne_beats_grid_on_replication(self, power_graph):
        from repro.partition.quality import vertex_replication_ratio

        ne = get_partitioner("ne").partition(power_graph, 4)
        grid = get_partitioner("grid").partition(power_graph, 4)
        assert vertex_replication_ratio(ne) <= vertex_replication_ratio(grid)

    def test_ne_edge_balance_tight(self, power_graph):
        p = get_partitioner("ne").partition(power_graph, 4)
        assert edge_balance_factor(p) < 0.25

    def test_hdrf_balances_edges(self, power_graph):
        p = get_partitioner("hdrf").partition(power_graph, 4)
        assert edge_balance_factor(p) < 0.2

    def test_ginger_splits_high_degree_only(self, power_graph):
        p = get_partitioner("ginger", threshold=10.0).partition(power_graph, 4)
        for v in power_graph.vertices:
            if power_graph.in_degree(v) <= 10 and p.is_vcut_vertex(v):
                # Low-degree vertices keep their in-edges together; only
                # out-edges to other homes may split them.
                in_edges = set()
                for fid in p.placement(v):
                    for e in p.fragments[fid].incident(v):
                        if e[1] == v:
                            in_edges.add(fid)
                            break
                assert len(in_edges) <= max(1, power_graph.in_degree(v))

    def test_topox_fuses_low_degree(self, power_graph):
        p = get_partitioner("topox", max_supernode=8).partition(power_graph, 4)
        check_partition(p)
