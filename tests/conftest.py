"""Shared fixtures: small graphs and partitions used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, road_grid
from repro.partition.hybrid import HybridPartition


@pytest.fixture(scope="session")
def paper_g1() -> Graph:
    """A directed bipartite graph shaped like the paper's G1 (Fig. 1(a)).

    Sources ``s1..s5`` are vertices 0-4, targets ``t1..t5`` are 5-9.
    Every source points at a few targets; targets' in-degrees are skewed
    so CN's workload is unbalanced under naive partitions.
    """
    edges = [
        (0, 5), (1, 5),                     # t1 <- s1, s2
        (0, 6), (1, 6), (2, 6), (3, 6),     # t2 <- s1, s2, s3, s4
        (0, 7), (2, 7),                     # t3 <- s1, s3
        (2, 8), (3, 8), (4, 8),             # t4 <- s3, s4, s5
        (3, 9), (4, 9),                     # t5 <- s4, s5
    ]
    return Graph(10, edges, directed=True)


@pytest.fixture(scope="session")
def paper_g2() -> Graph:
    """An undirected graph in the spirit of the paper's G2 (Fig. 1(d))."""
    edges = [
        (0, 1), (1, 2), (1, 4),        # v1-v2, v2-v3, v2-v5
        (2, 4), (0, 6),                # v3-v5, v1-v7
        (4, 6), (2, 8),                # v5-v7, v3-v9
        (8, 5), (8, 9), (8, 7),        # v9-v6, v9-v10, v9-v8
        (5, 3), (3, 9), (7, 5),        # v6-v4, v4-v10, v8-v6
    ]
    return Graph(10, edges, directed=False)


@pytest.fixture(scope="session")
def power_graph() -> Graph:
    """Small skewed directed graph for partitioner/refiner tests."""
    return chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)


@pytest.fixture(scope="session")
def undirected_graph() -> Graph:
    """Small undirected power-law graph (TC/WCC oriented tests)."""
    return chung_lu_power_law(200, 6.0, exponent=2.2, directed=False, seed=9)


@pytest.fixture(scope="session")
def grid_graph() -> Graph:
    """Small road grid (high diameter, SSSP regime)."""
    return road_grid(8, 8, seed=1)


def make_edge_cut(graph: Graph, n: int = 4, seed: int = 0) -> HybridPartition:
    """Random edge-cut partition helper."""
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n, size=graph.num_vertices).tolist()
    return HybridPartition.from_vertex_assignment(graph, assignment, n)


def make_vertex_cut(graph: Graph, n: int = 4, seed: int = 0) -> HybridPartition:
    """Random vertex-cut partition helper."""
    rng = np.random.default_rng(seed)
    assignment = {e: int(rng.integers(0, n)) for e in graph.edges()}
    return HybridPartition.from_edge_assignment(graph, assignment, n)


@pytest.fixture()
def edge_cut(power_graph) -> HybridPartition:
    return make_edge_cut(power_graph, 4, seed=0)


@pytest.fixture()
def vertex_cut(power_graph) -> HybridPartition:
    return make_vertex_cut(power_graph, 4, seed=0)
