"""Failover differential suite: every algorithm, both cuts, both paths.

The full cross product the issue's CI job runs: 5 algorithms x
{edge-cut, vertex-cut} baselines x {transient crash, permanent loss} x
{vectorized kernels, scalar reference}.  In every cell the faulty run's
results must be bit-identical to the clean run on the same path, and the
loss cells must show degraded-mode accounting (a promoted-master count
and a failover charge) with a strictly larger makespan.
"""

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.eval.harness import algorithm_params
from repro.graph.generators import chung_lu_power_law
from repro.partitioners.base import get_partitioner
from repro.runtime.faults import CrashFault, FaultPlan, PermanentLossFault

CRASH_PLAN = FaultPlan(seed=11, crashes=(CrashFault(worker=1, superstep=1),))
LOSS_PLAN = FaultPlan(seed=11, losses=(PermanentLossFault(worker=1, superstep=1),))
PLANS = {"crash": CRASH_PLAN, "loss": LOSS_PLAN}

_CLEAN = {}


@pytest.fixture(scope="module")
def partitions():
    graph = chung_lu_power_law(200, 5.0, exponent=2.1, directed=True, seed=9)
    return {
        "edge": get_partitioner("fennel").partition(graph, 4),
        "vertex": get_partitioner("dbh").partition(graph, 4),
    }


def clean_run(partitions, name, cut, use_kernels):
    key = (name, cut, use_kernels)
    if key not in _CLEAN:
        params = algorithm_params(name, "")
        _CLEAN[key] = get_algorithm(name).run(
            partitions[cut], use_kernels=use_kernels, **params
        )
    return _CLEAN[key]


@pytest.mark.parametrize("use_kernels", [True, False], ids=["kernels", "scalar"])
@pytest.mark.parametrize("fault", ["crash", "loss"])
@pytest.mark.parametrize("cut", ["edge", "vertex"])
@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_faulty_results_bit_identical(partitions, name, cut, fault, use_kernels):
    clean = clean_run(partitions, name, cut, use_kernels)
    params = algorithm_params(name, "")
    faulty = (
        get_algorithm(name)
        .configure_faults(PLANS[fault], checkpoint_interval=2)
        .run(partitions[cut], use_kernels=use_kernels, **params)
    )
    assert faulty.values == clean.values
    profile = faulty.profile
    assert profile.num_failures == 1
    assert profile.makespan > clean.makespan
    if fault == "loss":
        assert profile.losses == 1
        assert profile.promoted_masters > 0
        assert profile.failover_time > 0.0
    else:
        assert profile.losses == 0
        assert profile.recovery_time > 0.0


@pytest.mark.parametrize("cut", ["edge", "vertex"])
def test_kernel_and_scalar_paths_agree_after_loss(partitions, cut):
    """Degraded-mode accounting is path-independent, not just results."""
    runs = {
        use_kernels: get_algorithm("pr")
        .configure_faults(LOSS_PLAN, checkpoint_interval=2)
        .run(partitions[cut], use_kernels=use_kernels)
        for use_kernels in (True, False)
    }
    assert runs[True].values == runs[False].values
    assert runs[True].makespan == pytest.approx(runs[False].makespan)
    assert (
        runs[True].profile.promoted_masters
        == runs[False].profile.promoted_masters
    )
    assert (
        runs[True].profile.replaced_vertices
        == runs[False].profile.replaced_vertices
    )
