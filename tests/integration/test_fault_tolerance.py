"""End-to-end fault-tolerance guarantees across all five algorithms.

Two contracts from the issue's acceptance criteria:

* with fault injection disabled, the runtime's default path is
  bit-identical to a second fault-free run (zero-overhead default);
* under a seeded fault plan (one crash + 5% message drops + one 2×
  straggler, with checkpointing on) every algorithm's *results* equal
  its fault-free results, while the profile shows nonzero recovery time
  and checkpoint volume.
"""

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.cli import main
from repro.eval.harness import algorithm_params
from repro.graph.generators import chung_lu_power_law
from repro.graph.io import write_edge_list
from repro.partition.serialize import save_partition
from repro.partitioners.base import get_partitioner
from repro.runtime.faults import CrashFault, FaultPlan, StragglerFault

FAULT_PLAN = FaultPlan(
    seed=11,
    crashes=(CrashFault(worker=1, superstep=1),),
    drop_rate=0.05,
    stragglers=(StragglerFault(worker=2, factor=2.0),),
)


@pytest.fixture(scope="module")
def partition():
    graph = chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)
    return get_partitioner("fennel").partition(graph, 4)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_results_identical_under_seeded_fault_plan(partition, name):
    params = algorithm_params(name, "")
    clean = get_algorithm(name).run(partition, **params)
    faulty = (
        get_algorithm(name)
        .configure_faults(FAULT_PLAN, checkpoint_interval=1)
        .run(partition, **params)
    )
    assert faulty.values == clean.values
    profile = faulty.profile
    assert profile.num_failures == 1
    assert profile.recovery_time > 0.0
    assert profile.checkpoint_bytes > 0.0
    assert profile.makespan > clean.makespan
    crash = profile.failures[0]
    assert crash.kind == "crash"
    assert crash.worker == 1
    assert crash.superstep == 1


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_default_path_is_bit_identical(partition, name):
    params = algorithm_params(name, "")
    first = get_algorithm(name).run(partition, **params)
    second = get_algorithm(name).run(partition, **params)
    assert first.makespan == second.makespan  # bit-identical, no approx
    assert first.values == second.values
    assert first.profile.recovery_time == 0.0
    assert first.profile.checkpoint_bytes == 0.0
    assert first.profile.failures == []


def test_faulty_runs_are_reproducible(partition):
    runs = [
        get_algorithm("pr")
        .configure_faults(FAULT_PLAN, checkpoint_interval=2)
        .run(partition)
        for _ in range(2)
    ]
    assert runs[0].makespan == runs[1].makespan
    assert runs[0].profile.messages_dropped == runs[1].profile.messages_dropped
    assert runs[0].profile.recovery_time == runs[1].profile.recovery_time


def test_run_params_override_configured_faults(partition):
    algorithm = get_algorithm("wcc").configure_faults(FAULT_PLAN, 1)
    # Per-run params can switch faults back off entirely.
    result = algorithm.run(partition, faults=None, checkpoint_interval=0)
    assert result.profile.failures == []
    assert result.profile.checkpoint_bytes == 0.0


def test_cli_evaluate_reports_fault_columns(tmp_path, capsys):
    graph = chung_lu_power_law(200, 5.0, exponent=2.1, directed=True, seed=3)
    graph_file = tmp_path / "g.txt"
    part_file = tmp_path / "p.json"
    write_edge_list(graph, str(graph_file))
    save_partition(get_partitioner("fennel").partition(graph, 3), str(part_file))
    code = main(
        [
            "evaluate",
            "--graph", str(graph_file),
            "--partition", str(part_file),
            "--algorithms", "pr",
            "--faults-seed", "11",
            "--crash", "1:1",
            "--drop-rate", "0.05",
            "--straggler", "2:2.0",
            "--checkpoint-interval", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "recovery ms" in out
    assert "ckpt bytes" in out


def test_cli_rejects_malformed_crash_spec(tmp_path):
    with pytest.raises(SystemExit, match="--crash"):
        main(
            [
                "evaluate",
                "--graph", "g",
                "--partition", "p",
                "--crash", "nonsense",
            ]
        )
