"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main(
        [
            "generate", "--kind", "powerlaw", "--vertices", "300",
            "--degree", "6", "--seed", "5", "--out", str(path),
        ]
    )
    assert rc == 0
    return path


def test_generate_writes_graph(graph_file, capsys):
    from repro.graph.io import read_edge_list

    graph = read_edge_list(graph_file)
    assert graph.num_vertices == 300
    assert graph.num_edges > 0


@pytest.mark.parametrize("kind", ["er", "grid", "smallworld", "rmat"])
def test_generate_other_kinds(kind, tmp_path):
    out = tmp_path / f"{kind}.txt"
    rc = main(
        ["generate", "--kind", kind, "--vertices", "100", "--out", str(out)]
    )
    assert rc == 0
    assert out.exists()


def test_partition_evaluate_metrics_pipeline(graph_file, tmp_path, capsys):
    part_file = tmp_path / "p.json"
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "fennel",
            "--fragments", "3", "--out", str(part_file),
        ]
    )
    assert rc == 0
    assert part_file.exists()

    rc = main(
        [
            "evaluate", "--graph", str(graph_file),
            "--partition", str(part_file), "--algorithms", "pr,wcc",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "PR" in out and "WCC" in out and "simulated ms" in out

    rc = main(
        ["metrics", "--graph", str(graph_file), "--partition", str(part_file)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "f_v" in out and "lambda_e" in out


@pytest.mark.slow
def test_partition_with_refinement(graph_file, tmp_path, capsys):
    part_file = tmp_path / "p.json"
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--refine", "pr", "--out", str(part_file),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "pr-driven refinement" in out


def test_refine_hybrid_baseline_rejected(graph_file, tmp_path, capsys):
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "ginger",
            "--fragments", "3", "--refine", "pr",
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 2
    assert "cannot refine" in capsys.readouterr().err


def test_metrics_with_cost_model(graph_file, tmp_path, capsys):
    part_file = tmp_path / "p.json"
    main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "hash",
            "--fragments", "3", "--out", str(part_file),
        ]
    )
    rc = main(
        [
            "metrics", "--graph", str(graph_file), "--partition", str(part_file),
            "--cost-model", "wcc",
        ]
    )
    assert rc == 0
    assert "lambda_wcc" in capsys.readouterr().out


@pytest.fixture()
def mutation_file(graph_file, tmp_path):
    """A small batch valid for the generated graph: one delete, one insert."""
    edges = []
    for line in graph_file.read_text().splitlines():
        if line.startswith("#") or not line.strip():
            continue
        u, v = map(int, line.split())
        edges.append((u, v))
    present = edges[0]
    have = set(edges)
    missing = next(
        (u, v)
        for u in range(50)
        for v in range(50)
        if u != v and (u, v) not in have
    )
    path = tmp_path / "batch.txt"
    path.write_text(
        f"# maintenance batch\n- {present[0]} {present[1]}\n"
        f"+ {missing[0]} {missing[1]}\n305\n"
    )
    return path


def test_partition_apply_mutations(graph_file, mutation_file, tmp_path, capsys):
    part_file = tmp_path / "p.json"
    graph_out = tmp_path / "g2.txt"
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--refine", "pr",
            "--apply-mutations", str(mutation_file),
            "--out-graph", str(graph_out), "--out", str(part_file),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "incremental: 3 mutations" in out
    assert "dirty-region" in out
    assert "rescoring calls=" in out
    assert "mutation maintenance" in out
    assert part_file.exists()
    # The mutated graph loads back with the maintained partition, so the
    # rest of the pipeline keeps working on the updated deployment.
    rc = main(
        [
            "evaluate", "--graph", str(graph_out),
            "--partition", str(part_file), "--algorithms", "pr",
        ]
    )
    assert rc == 0


def test_out_graph_requires_apply_mutations(graph_file, tmp_path, capsys):
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--out-graph", str(tmp_path / "g2.txt"),
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 2
    assert "--out-graph requires" in capsys.readouterr().err


def test_partition_apply_mutations_full_mode(
    graph_file, mutation_file, tmp_path, capsys
):
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--refine", "pr",
            "--apply-mutations", str(mutation_file), "--no-incremental",
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 0
    assert "full re-refinement" in capsys.readouterr().out


def test_no_incremental_requires_apply_mutations(graph_file, tmp_path, capsys):
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--no-incremental",
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 2
    assert "--no-incremental requires" in capsys.readouterr().err


def test_apply_mutations_bad_file(graph_file, tmp_path, capsys):
    bad = tmp_path / "bad.txt"
    bad.write_text("+ 0\n")
    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3", "--apply-mutations", str(bad),
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 2
    assert "line 1" in capsys.readouterr().err

    rc = main(
        [
            "partition", "--graph", str(graph_file), "--partitioner", "grid",
            "--fragments", "3",
            "--apply-mutations", str(tmp_path / "missing.txt"),
            "--out", str(tmp_path / "p.json"),
        ]
    )
    assert rc == 2
