"""Parser-level CLI tests (no heavy work)."""

import pytest

from repro.cli import build_parser


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_defaults():
    args = build_parser().parse_args(["generate", "--out", "g.txt"])
    assert args.kind == "powerlaw"
    assert args.vertices == 1000
    assert not args.undirected


def test_generate_rejects_unknown_kind():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["generate", "--kind", "tree", "--out", "g"])


def test_partition_rejects_unknown_partitioner():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["partition", "--graph", "g", "--partitioner", "magic", "--out", "p"]
        )


def test_partition_refine_choices_are_algorithms():
    args = build_parser().parse_args(
        [
            "partition", "--graph", "g", "--partitioner", "metis",
            "--refine", "tc", "--out", "p",
        ]
    )
    assert args.refine == "tc"


def test_evaluate_algorithm_list_default():
    args = build_parser().parse_args(
        ["evaluate", "--graph", "g", "--partition", "p"]
    )
    assert args.algorithms == "pr,wcc,sssp"


def test_metrics_cost_model_optional():
    args = build_parser().parse_args(
        ["metrics", "--graph", "g", "--partition", "p"]
    )
    assert args.cost_model is None
