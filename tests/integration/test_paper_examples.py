"""Scenario tests mirroring the paper's running examples (Section 1-2).

These use the G1/G2-style fixtures to check the *qualitative* claims the
paper builds its motivation on: CN workload skew under vertex-balanced
edge-cuts (Example 1), communication removal by replication for TC
(Example 1(2)), and the quality metrics of Example 5's flavor.
"""

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.tracker import CostTracker
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import CostModel
from repro.costmodel.polynomial import Monomial, PolynomialCostFunction
from repro.partition.hybrid import HybridPartition, NodeRole
from repro.partition.quality import (
    cost_balance_factor,
    edge_balance_factor,
    vertex_balance_factor,
)


def cn_workload_model() -> CostModel:
    """Example 1(a)'s analytic workload: ½ d⁺(v)(d⁺(v)−1) per vertex."""
    h = PolynomialCostFunction(
        [Monomial(0.5, {"d_in_L": 2}), Monomial(-0.5, {"d_in_L": 1})], "h"
    )
    g = PolynomialCostFunction([Monomial(0.0, {})], "g")
    return CostModel("cn_paper", h, g)


class TestExample1CommonNeighbors:
    def test_vertex_balanced_cut_skews_cn_workload(self, paper_g1):
        """Fig. 1(b)'s phenomenon: balance vertices, skew CN cost."""
        # Split targets evenly: t1,t2,t3 with s1,s2 | t4,t5 with s3,s4,s5.
        assignment = [0, 0, 1, 1, 1, 0, 0, 0, 1, 1]
        partition = HybridPartition.from_vertex_assignment(paper_g1, assignment, 2)
        assert vertex_balance_factor(partition) < 0.3
        model = cn_workload_model()
        lam_cn = cost_balance_factor(partition, model)
        # F0 hosts the high in-degree targets: CN workload is skewed.
        assert lam_cn > 0.3

    def test_cost_aware_cut_balances_cn(self, paper_g1):
        """Fig. 1(c)'s counterpoint: unbalanced sizes, balanced workload."""
        model = cn_workload_model()
        # Put the heavy target t2 (in-degree 4) alone against the rest.
        assignment = [0, 0, 1, 1, 1, 1, 0, 1, 1, 1]
        partition = HybridPartition.from_vertex_assignment(paper_g1, assignment, 2)
        lam_cn = cost_balance_factor(partition, model)
        assert lam_cn < 0.35

    def test_cn_cost_formula_matches_runtime_ops(self, paper_g1):
        """The Example 1 formula Σ ½d⁺(d⁺−1) equals CN's actual op count."""
        assignment = [0] * 10
        partition = HybridPartition.from_vertex_assignment(paper_g1, assignment, 2)
        result = get_algorithm("cn").run(partition)
        expected = sum(
            paper_g1.in_degree(v) * (paper_g1.in_degree(v) - 1) // 2
            for v in paper_g1.vertices
        )
        assert result.values == expected


class TestExample1TriangleCounting:
    def test_replication_removes_tc_queries(self, paper_g2):
        """Fig. 1(e) vs 1(f): promoting a split vertex to e-cut removes
        its remote verification traffic."""
        # Vertex-cut with vertex 1 (the paper's v2) split.
        edges = list(paper_g2.edges())
        assignment = {e: (0 if 1 in e and e != (1, 4) else 1) for e in edges}
        vertex_cut = HybridPartition.from_edge_assignment(paper_g2, assignment, 2)
        assert vertex_cut.is_vcut_vertex(1)
        before = get_algorithm("tc").run(vertex_cut)

        from repro.core.operations import vmerge

        hybrid = vertex_cut.copy()
        vmerge(hybrid, 1, 0)
        assert hybrid.is_ecut_vertex(1)
        after = get_algorithm("tc").run(hybrid)
        assert after.values == before.values  # same triangles
        # The merged partition needs no more bytes than the split one.
        assert after.profile.total_bytes <= before.profile.total_bytes


class TestExample5Metrics:
    def test_edge_cut_vertex_cut_signatures(self, paper_g1):
        ec = HybridPartition.from_vertex_assignment(
            paper_g1, [0, 0, 1, 1, 1, 0, 0, 0, 1, 1], 2
        )
        from repro.partition.quality import (
            edge_replication_ratio,
            vertex_replication_ratio,
        )

        # Edge-cut: edges replicate across fragments, f_e > 1.
        assert edge_replication_ratio(ec) > 1.0
        vc = HybridPartition.from_edge_assignment(
            paper_g1, {e: i % 2 for i, e in enumerate(paper_g1.edges())}, 2
        )
        # Vertex-cut: f_e = 1 exactly, vertices replicate.
        assert edge_replication_ratio(vc) == pytest.approx(1.0)
        assert vertex_replication_ratio(vc) > 1.0


class TestExample3Roles:
    def test_role_taxonomy_on_manual_hybrid(self, paper_g2):
        """Build a Fig. 1(f)-style hybrid and check the role taxonomy."""
        p = HybridPartition(paper_g2, 2)
        # Vertex 8 (the paper's v9) split: some edges in each fragment.
        p.add_edge_to(0, (2, 8))
        p.add_edge_to(1, (8, 5))
        p.add_edge_to(1, (8, 9))
        p.add_edge_to(1, (8, 7))
        assert p.is_vcut_vertex(8)
        assert p.role(8, 0) is NodeRole.VCUT
        assert p.role(8, 1) is NodeRole.VCUT
        # Vertex 1 (v2) gets all its edges in F0 plus a copy in F1.
        for e in paper_g2.incident_edges(1):
            p.add_edge_to(0, e)
        p.add_edge_to(1, (1, 2))
        assert p.is_ecut_vertex(1)
        roles = {fid: p.role(1, fid) for fid in p.placement(1)}
        assert NodeRole.ECUT in roles.values()
        assert NodeRole.DUMMY in roles.values()
