"""Edge cases and failure injection across the stack."""

import math

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.e2h import E2H
from repro.core.parallel import ParE2H
from repro.core.tracker import CostTracker
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.costmodel.model import constant_cost_model
from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.partition.validation import check_partition
from repro.partitioners.base import PARTITIONER_NAMES, get_partitioner


class TestDegenerateGraphs:
    def test_empty_graph_partitions(self):
        g = Graph(0, [])
        for name in ("hash", "grid", "metis"):
            p = get_partitioner(name).partition(g, 3)
            assert p.num_fragments == 3

    def test_edgeless_graph(self):
        g = Graph(5, [])
        p = get_partitioner("fennel").partition(g, 2)
        check_partition(p)
        result = get_algorithm("wcc").run(p)
        assert len(set(result.values.values())) == 5

    def test_single_vertex(self):
        g = Graph(1, [])
        p = get_partitioner("hash").partition(g, 2)
        check_partition(p)
        assert get_algorithm("sssp").run(p, source=0).values == {0: 0.0}

    def test_self_loop_only_graph(self):
        g = Graph(2, [(0, 0), (0, 1)])
        p = get_partitioner("hash").partition(g, 2)
        check_partition(p)
        assert get_algorithm("wcc").run(p).values[1] == 0

    def test_all_isolated_refinement(self):
        g = Graph(6, [])
        p = HybridPartition.from_vertex_assignment(g, [0] * 6, 2)
        refined = E2H(constant_cost_model()).refine(p)
        check_partition(refined)
        # EMigrate moves isolated vertices; load should spread.
        tracker = CostTracker(refined, constant_cost_model())
        assert max(tracker.comp_costs()) <= 4
        tracker.detach()


class TestRefinerEdgeCases:
    def test_single_fragment_noop(self, power_graph):
        p = get_partitioner("hash").partition(power_graph, 1)
        refined = E2H(builtin_cost_model("cn")).refine(p)
        check_partition(refined)
        assert refined.fragments[0].num_edges == power_graph.num_edges

    def test_more_fragments_than_vertices(self):
        g = Graph(3, [(0, 1), (1, 2)])
        p = HybridPartition.from_vertex_assignment(g, [0, 0, 0], 5)
        refined = E2H(constant_cost_model()).refine(p)
        check_partition(refined)

    def test_v2h_on_edge_cut_input_is_safe(self, power_graph):
        # V2H expects a vertex-cut but must not corrupt an edge-cut.
        from tests.conftest import make_edge_cut

        p = make_edge_cut(power_graph, 4)
        refined = V2H(builtin_cost_model("tc")).refine(p)
        check_partition(refined)

    def test_e2h_on_vertex_cut_input_is_safe(self, power_graph):
        from tests.conftest import make_vertex_cut

        p = make_vertex_cut(power_graph, 4)
        refined = E2H(builtin_cost_model("cn")).refine(p)
        check_partition(refined)

    def test_invalid_candidate_order_rejected(self):
        with pytest.raises(ValueError):
            E2H(constant_cost_model(), candidate_order="random")

    def test_pare2h_no_underloaded_fragments(self):
        # Uniform costs, budget slack < 1: everyone overloaded.
        g = Graph(8, [(i, (i + 1) % 8) for i in range(8)])
        p = HybridPartition.from_vertex_assignment(g, [i % 2 for i in range(8)], 2)
        refined, profile = ParE2H(
            constant_cost_model(), budget_slack=0.5
        ).refine(p)
        check_partition(refined)


class TestAlgorithmEdgeCases:
    def test_sssp_source_out_of_component(self):
        g = Graph(4, [(0, 1), (2, 3)])
        p = HybridPartition.from_vertex_assignment(g, [0, 0, 1, 1], 2)
        result = get_algorithm("sssp").run(p, source=2)
        assert result.values[3] == 1.0
        assert math.isinf(result.values[0])

    def test_pr_zero_iterations(self, power_graph):
        from tests.conftest import make_edge_cut

        p = make_edge_cut(power_graph, 3)
        result = get_algorithm("pr").run(p, iterations=0)
        n = power_graph.num_vertices
        assert all(abs(rank - 1 / n) < 1e-12 for rank in result.values.values())

    def test_cn_theta_zero_filters_everything(self, power_graph):
        from tests.conftest import make_edge_cut

        p = make_edge_cut(power_graph, 3)
        assert get_algorithm("cn").run(p, theta=-1).values == 0

    def test_tc_on_directed_counts_undirected_view(self):
        # Directed triangle 0->1->2->0 is one undirected triangle.
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        p = HybridPartition.from_vertex_assignment(g, [0, 1, 0], 2)
        assert get_algorithm("tc").run(p).values == 1


class TestTrackerMisuse:
    def test_double_detach_raises(self, power_graph):
        from tests.conftest import make_edge_cut

        tracker = CostTracker(make_edge_cut(power_graph, 2), constant_cost_model())
        tracker.detach()
        with pytest.raises(ValueError):
            tracker.detach()

    def test_two_trackers_coexist(self, power_graph):
        from tests.conftest import make_edge_cut

        p = make_edge_cut(power_graph, 2)
        a = CostTracker(p, constant_cost_model())
        b = CostTracker(p, builtin_cost_model("pr"))
        from repro.core.operations import emigrate

        v = next(u for u in power_graph.vertices if p.designated_home(u) == 0)
        emigrate(p, v, 0, 1)
        # Both see the move.
        assert a.comp_cost(1) >= 1.0
        assert b.comp_cost(1) > 0.0
        a.detach()
        b.detach()
