"""Differential suite for heterogeneous-cluster support.

Two contracts lock the feature down:

* **Uniform bit-identity** — a cluster spec with every capacity exactly
  1.0 must be indistinguishable from passing no spec at all: identical
  refined partitions for all six refiners (E2H/V2H/ME2H/MV2H and their
  parallel drivers), identical refinement profiles, and identical
  makespans and ``RunProfile`` dicts for all five algorithms on both the
  vectorized-kernel and scalar execution paths.
* **Skewed path agreement** — with a genuinely skewed spec the kernel
  and scalar paths must still agree bit-for-bit with each other: the
  heterogeneous accounting (per-worker speed division, per-link
  bandwidth division at the barrier) is the same arithmetic in both.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.e2h import E2H
from repro.core.me2h import ME2H
from repro.core.mv2h import MV2H
from repro.core.parallel import ParE2H, ParV2H
from repro.core.v2h import V2H
from repro.costmodel.library import builtin_cost_model
from repro.graph.generators import chung_lu_power_law
from repro.partition.serialize import partition_to_dict
from repro.partitioners.base import get_partitioner
from repro.runtime.clusterspec import ClusterSpec

N = 4
ALGORITHMS = ("cn", "tc", "wcc", "pr", "sssp")
REFINERS = ("E2H", "V2H", "ME2H", "MV2H", "ParE2H", "ParV2H")

UNIFORM = ClusterSpec.uniform(N)
SKEWED = ClusterSpec(
    speeds=(0.25, 1.0, 1.0, 1.0),
    bandwidths=(1.0, 1.0, 1.0, 0.5),
    links=((1, 2, 0.25),),
)

#: small per-algorithm params so the runs stay fast
PARAMS = {"pr": {"iterations": 5}}


@pytest.fixture(scope="module")
def graph():
    return chung_lu_power_law(220, 5.0, exponent=2.1, directed=True, seed=3)


@pytest.fixture(scope="module")
def cuts(graph):
    return {
        "edge": get_partitioner("hash").partition(graph, N),
        "vertex": get_partitioner("dbh").partition(graph, N),
    }


def _refine(name: str, spec, cuts):
    """Run one refiner; returns (snapshot, profile-or-None, partitions)."""
    model = builtin_cost_model("pr")
    models = {a: builtin_cost_model(a) for a in ALGORITHMS}
    if name == "E2H":
        refined = E2H(model, cluster_spec=spec).refine(cuts["edge"])
    elif name == "V2H":
        refined = V2H(model, cluster_spec=spec).refine(cuts["vertex"])
    elif name == "ME2H":
        refined = ME2H(models, cluster_spec=spec).refine(cuts["edge"])
    elif name == "MV2H":
        refined = MV2H(models, cluster_spec=spec).refine(cuts["vertex"])
    elif name == "ParE2H":
        refined, profile = ParE2H(model, cluster_spec=spec).refine(cuts["edge"])
        return _snap(refined), profile, _views(refined)
    elif name == "ParV2H":
        refined, profile = ParV2H(model, cluster_spec=spec).refine(cuts["vertex"])
        return _snap(refined), profile, _views(refined)
    else:
        raise KeyError(name)
    return _snap(refined), None, _views(refined)


def _views(refined):
    """Per-algorithm run targets (composites expose one view per model)."""
    if hasattr(refined, "partition_for"):
        return {a: refined.partition_for(a) for a in ALGORITHMS}
    return {a: refined for a in ALGORITHMS}


def _snap(refined):
    if hasattr(refined, "partition_for"):
        return {
            a: partition_to_dict(refined.partition_for(a)) for a in ALGORITHMS
        }
    return partition_to_dict(refined)


@pytest.fixture(scope="module")
def refined(cuts):
    """Every refiner's output under each spec, computed once."""
    out = {}
    for name in REFINERS:
        for label, spec in (("none", None), ("uniform", UNIFORM), ("skewed", SKEWED)):
            out[name, label] = _refine(name, spec, cuts)
    return out


def _run(partition, algorithm, spec, use_kernels):
    result = get_algorithm(algorithm).run(
        partition,
        cluster_spec=spec,
        use_kernels=use_kernels,
        **PARAMS.get(algorithm, {}),
    )
    return result.makespan, result.profile.to_dict(), result.values


# ----------------------------------------------------------------------
# Uniform spec == no spec, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("refiner", REFINERS)
def test_uniform_refinement_bit_identical(refined, refiner):
    snap_none, prof_none, _ = refined[refiner, "none"]
    snap_uni, prof_uni, _ = refined[refiner, "uniform"]
    assert snap_none == snap_uni
    if prof_none is not None:
        assert prof_none.total_time == prof_uni.total_time
        assert prof_none.phase_times == prof_uni.phase_times
        assert prof_none.phase_supersteps == prof_uni.phase_supersteps


@pytest.mark.parametrize("refiner", REFINERS)
def test_skewed_refinement_diverges(refined, refiner):
    """The skewed spec must actually change refinement decisions."""
    assert refined[refiner, "skewed"][0] != refined[refiner, "none"][0]


@pytest.mark.parametrize("use_kernels", [True, False], ids=["kernels", "scalar"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("refiner", REFINERS)
def test_uniform_run_bit_identical(refined, refiner, algorithm, use_kernels):
    partition = refined[refiner, "none"][2][algorithm]
    makespan_none, profile_none, values_none = _run(
        partition, algorithm, None, use_kernels
    )
    makespan_uni, profile_uni, values_uni = _run(
        partition, algorithm, UNIFORM, use_kernels
    )
    assert makespan_none == makespan_uni
    assert profile_none == profile_uni
    assert values_none == values_uni


# ----------------------------------------------------------------------
# Skewed spec: kernels and scalar paths agree bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("refiner", REFINERS)
def test_skewed_kernels_scalar_agree(refined, refiner, algorithm):
    partition = refined[refiner, "skewed"][2][algorithm]
    makespan_k, profile_k, values_k = _run(partition, algorithm, SKEWED, True)
    makespan_s, profile_s, values_s = _run(partition, algorithm, SKEWED, False)
    assert makespan_k == makespan_s
    assert profile_k == profile_s
    assert values_k == values_s


def test_skewed_run_slower_than_uniform(refined):
    """Sanity: degrading a worker cannot speed up the same partition."""
    partition = refined["E2H", "none"][2]["pr"]
    uniform_ms, _p, _v = _run(partition, "pr", None, True)
    skewed_ms, _p, _v = _run(partition, "pr", SKEWED, True)
    assert skewed_ms > uniform_ms
