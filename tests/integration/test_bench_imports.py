"""Guard: every benchmark module imports cleanly.

Benches only run under ``pytest benchmarks/ --benchmark-only``; this
cheap test keeps them from bit-rotting when library APIs change.
"""

import importlib.util
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_bench_module_imports(path):
    spec = importlib.util.spec_from_file_location(f"bench_import_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert any(name.startswith("test_") for name in dir(module))


def test_every_bench_has_docstring():
    for path in BENCH_FILES:
        first = path.read_text().lstrip()
        assert first.startswith('"""'), f"{path.name} lacks a module docstring"
