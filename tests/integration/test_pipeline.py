"""End-to-end integration tests: the full paper pipeline on one graph.

learn cost model → partition → refine → run algorithm → compare against
the unrefined baseline and the single-machine reference.
"""

import pytest

from repro.algorithms.reference import reference_pagerank, reference_wcc
from repro.algorithms.registry import get_algorithm
from repro.core.parallel import ParE2H, ParME2H
from repro.costmodel.collection import collect_training_data
from repro.costmodel.model import CostModel
from repro.costmodel.polynomial import Monomial, PolynomialCostFunction
from repro.costmodel.training import fit_cost_function
from repro.graph.generators import chung_lu_power_law
from repro.partition.validation import check_partition
from repro.partitioners.base import get_partitioner


@pytest.fixture(scope="module")
def graph():
    return chung_lu_power_law(400, 8.0, exponent=2.0, directed=True, seed=77)


@pytest.mark.slow
def test_full_single_algorithm_pipeline(graph):
    # 1. Learn the cost model for PR from instrumented runs.
    train_graphs = [chung_lu_power_law(150, 6.0, seed=s) for s in (1, 2)]
    comp, comm = collect_training_data(
        "pr", train_graphs, num_fragments=3, seed=0,
        algorithm_params={"iterations": 2},
    )
    h_report = fit_cost_function(comp, ["d_in_L"], degree=2, name="h_pr")
    g_report = fit_cost_function(comm, ["r"], degree=1, name="g_pr")
    assert h_report.test_msre < 0.5
    model = CostModel("pr", h_report.function, g_report.function)

    # 2. Partition with a baseline and refine with the learned model.
    initial = get_partitioner("fennel").partition(graph, 4)
    refined, profile = ParE2H(model).refine(initial)
    check_partition(refined)
    assert profile.stats.cost_after <= profile.stats.cost_before

    # 3. The refined partition computes the exact PageRank...
    result = get_algorithm("pr").run(refined, iterations=5)
    reference = reference_pagerank(graph, iterations=5)
    for v in graph.vertices:
        assert result.values[v] == pytest.approx(reference[v], abs=1e-10)

    # 4. ...faster (in simulated parallel time) than the baseline.
    baseline_time = get_algorithm("pr").run(initial, iterations=5).makespan
    assert result.makespan < baseline_time


@pytest.mark.slow
def test_full_mixed_workload_pipeline(graph):
    models = {
        "pr": CostModel(
            "pr",
            PolynomialCostFunction([Monomial(1e-4, {"d_in_L": 1})], "h"),
            PolynomialCostFunction([Monomial(1e-4, {"r": 1})], "g"),
        ),
        "wcc": CostModel(
            "wcc",
            PolynomialCostFunction([Monomial(1e-4, {"d_L": 1})], "h"),
            PolynomialCostFunction([Monomial(1e-4, {"r": 1})], "g"),
        ),
    }
    initial = get_partitioner("xtrapulp").partition(graph, 4)
    composite, profile = ParME2H(models).refine(initial)
    assert profile.total_time > 0

    # Both partitions valid, both algorithms exact, storage compacted.
    assert composite.space_saving() >= 0.0
    for name, reference_fn in (("pr", None), ("wcc", reference_wcc)):
        partition = composite.partition_for(name)
        check_partition(partition)
    wcc_result = get_algorithm("wcc").run(composite.partition_for("wcc"))
    assert wcc_result.values == reference_wcc(graph)


@pytest.mark.slow
def test_refinement_composes_with_updates(graph):
    """Refined partitions stay usable as inputs to further refinement."""
    from repro.core.e2h import E2H
    from repro.costmodel.library import builtin_cost_model

    model = builtin_cost_model("wcc")
    p0 = get_partitioner("hash").partition(graph, 4)
    p1 = E2H(model).refine(p0)
    p2 = E2H(model).refine(p1)  # idempotent-ish second pass
    check_partition(p2)
    result = get_algorithm("wcc").run(p2)
    assert result.values == reference_wcc(graph)
