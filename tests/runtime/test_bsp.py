"""Tests for the BSP cluster simulator."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.runtime.bsp import Cluster
from repro.runtime.costclock import CostClock


@pytest.fixture()
def cluster():
    g = Graph(4, [(0, 1), (2, 3)])
    p = HybridPartition.from_vertex_assignment(g, [0, 0, 1, 1], 2)
    return Cluster(p, clock=CostClock(op_cost=1.0, byte_cost=1.0, superstep_latency=0.5))


class TestCharging:
    def test_comp_charge_accumulates(self, cluster):
        cluster.charge(0, 5)
        cluster.charge(0, 3)
        cluster.deliver()
        assert cluster.profile.comp_ops_by_worker[0] == 8

    def test_zero_and_negative_charges_ignored(self, cluster):
        cluster.charge(0, 0)
        cluster.charge(0, -5)
        assert cluster.profile.comp_ops_by_worker.get(0, 0) == 0

    def test_vertex_attribution(self, cluster):
        cluster.charge(1, 4, vertex=7)
        assert cluster.profile.comp_ops_by_copy[(1, 7)] == 4


class TestMessaging:
    def test_messages_delivered_next_superstep(self, cluster):
        cluster.send(0, 1, "hello", nbytes=5)
        inboxes = cluster.deliver()
        assert inboxes[1] == ["hello"]
        assert inboxes[0] == []

    def test_local_messages_free(self, cluster):
        cluster.send(0, 0, "self", nbytes=100)
        inboxes = cluster.deliver()
        assert inboxes[0] == ["self"]
        assert cluster.profile.bytes_by_worker.get(0, 0) == 0

    def test_remote_bytes_charged_both_ends(self, cluster):
        cluster.send(0, 1, "x", nbytes=10)
        cluster.deliver()
        assert cluster.profile.bytes_by_worker[0] == 10
        assert cluster.profile.bytes_by_worker[1] == 10

    def test_master_vertex_attribution(self, cluster):
        cluster.send(0, 1, "sync", nbytes=12, master_vertex=3)
        cluster.deliver()
        assert cluster.profile.comm_bytes_by_master[3] == 12


class TestClock:
    def test_superstep_time_is_max_plus_latency(self, cluster):
        cluster.charge(0, 10)
        cluster.charge(1, 4)
        cluster.send(0, 1, "m", nbytes=3)
        cluster.deliver()
        # max ops 10 * 1.0 + max bytes 3 * 1.0 + latency 0.5
        assert cluster.profile.makespan == pytest.approx(13.5)

    def test_makespan_accumulates(self, cluster):
        cluster.charge(0, 1)
        cluster.deliver()
        cluster.charge(1, 2)
        cluster.deliver()
        assert cluster.profile.makespan == pytest.approx(1.5 + 2.5)
        assert cluster.profile.num_supersteps == 2

    def test_finish_flushes_pending(self, cluster):
        cluster.charge(0, 1)
        profile = cluster.finish()
        assert profile.num_supersteps == 1

    def test_finish_idempotent_when_clean(self, cluster):
        cluster.deliver()
        before = cluster.profile.num_supersteps
        cluster.finish()
        assert cluster.profile.num_supersteps == before


class TestProfile:
    def test_summary_string(self, cluster):
        cluster.charge(0, 3)
        cluster.deliver()
        text = cluster.profile.summary()
        assert "supersteps" in text

    def test_worker_time(self, cluster):
        cluster.charge(0, 10)
        cluster.send(0, 1, "m", nbytes=4)
        cluster.deliver()
        clock = cluster.clock
        assert cluster.profile.worker_time(0, clock) == pytest.approx(14.0)
