"""Tests for the BSP cluster simulator."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.runtime.bsp import Cluster
from repro.runtime.costclock import CostClock
from repro.runtime.faults import CrashFault, FaultPlan, StragglerFault

CLOCK = CostClock(op_cost=1.0, byte_cost=1.0, superstep_latency=0.5)


def make_partition():
    g = Graph(4, [(0, 1), (2, 3)])
    return HybridPartition.from_vertex_assignment(g, [0, 0, 1, 1], 2)


@pytest.fixture()
def cluster():
    return Cluster(make_partition(), clock=CLOCK)


class TestCharging:
    def test_comp_charge_accumulates(self, cluster):
        cluster.charge(0, 5)
        cluster.charge(0, 3)
        cluster.deliver()
        assert cluster.profile.comp_ops_by_worker[0] == 8

    def test_zero_and_negative_charges_ignored(self, cluster):
        cluster.charge(0, 0)
        cluster.charge(0, -5)
        assert cluster.profile.comp_ops_by_worker.get(0, 0) == 0

    def test_vertex_attribution(self, cluster):
        cluster.charge(1, 4, vertex=7)
        assert cluster.profile.comp_ops_by_copy[(1, 7)] == 4


class TestMessaging:
    def test_messages_delivered_next_superstep(self, cluster):
        cluster.send(0, 1, "hello", nbytes=5)
        inboxes = cluster.deliver()
        assert inboxes[1] == ["hello"]
        assert inboxes[0] == []

    def test_local_messages_free(self, cluster):
        cluster.send(0, 0, "self", nbytes=100)
        inboxes = cluster.deliver()
        assert inboxes[0] == ["self"]
        assert cluster.profile.bytes_by_worker.get(0, 0) == 0

    def test_remote_bytes_charged_both_ends(self, cluster):
        cluster.send(0, 1, "x", nbytes=10)
        cluster.deliver()
        assert cluster.profile.bytes_by_worker[0] == 10
        assert cluster.profile.bytes_by_worker[1] == 10

    def test_master_vertex_attribution(self, cluster):
        cluster.send(0, 1, "sync", nbytes=12, master_vertex=3)
        cluster.deliver()
        assert cluster.profile.comm_bytes_by_master[3] == 12


class TestClock:
    def test_superstep_time_is_max_plus_latency(self, cluster):
        cluster.charge(0, 10)
        cluster.charge(1, 4)
        cluster.send(0, 1, "m", nbytes=3)
        cluster.deliver()
        # max ops 10 * 1.0 + max bytes 3 * 1.0 + latency 0.5
        assert cluster.profile.makespan == pytest.approx(13.5)

    def test_makespan_accumulates(self, cluster):
        cluster.charge(0, 1)
        cluster.deliver()
        cluster.charge(1, 2)
        cluster.deliver()
        assert cluster.profile.makespan == pytest.approx(1.5 + 2.5)
        assert cluster.profile.num_supersteps == 2

    def test_finish_flushes_pending(self, cluster):
        cluster.charge(0, 1)
        profile = cluster.finish()
        assert profile.num_supersteps == 1

    def test_finish_idempotent_when_clean(self, cluster):
        cluster.deliver()
        before = cluster.profile.num_supersteps
        cluster.finish()
        assert cluster.profile.num_supersteps == before


class TestProfile:
    def test_summary_string(self, cluster):
        cluster.charge(0, 3)
        cluster.deliver()
        text = cluster.profile.summary()
        assert "supersteps" in text

    def test_worker_time(self, cluster):
        cluster.charge(0, 10)
        cluster.send(0, 1, "m", nbytes=4)
        cluster.deliver()
        clock = cluster.clock
        assert cluster.profile.worker_time(0, clock) == pytest.approx(14.0)


class TestValidation:
    def test_charge_rejects_out_of_range_worker(self, cluster):
        with pytest.raises(ValueError, match="out of range"):
            cluster.charge(2, 1)
        with pytest.raises(ValueError, match="out of range"):
            cluster.charge(-1, 1)

    def test_send_rejects_out_of_range_endpoints(self, cluster):
        with pytest.raises(ValueError, match="source"):
            cluster.send(5, 0, "m", nbytes=1)
        with pytest.raises(ValueError, match="destination"):
            cluster.send(0, 5, "m", nbytes=1)

    def test_empty_partition_rejected(self):
        class Fake:
            num_fragments = 0

        with pytest.raises(ValueError, match="at least one fragment"):
            Cluster(Fake())

    def test_crash_plan_must_name_existing_worker(self):
        plan = FaultPlan(crashes=(CrashFault(worker=9, superstep=0),))
        with pytest.raises(ValueError, match="only 2 workers"):
            Cluster(make_partition(), clock=CLOCK, faults=plan)


def faulty_cluster(plan, **kwargs):
    return Cluster(make_partition(), clock=CLOCK, faults=plan, **kwargs)


class TestFaultInjection:
    def test_empty_plan_keeps_default_path(self):
        cluster = faulty_cluster(FaultPlan())
        assert cluster.faults is None

    def test_dropped_message_still_delivered_but_bytes_doubled(self):
        # seed chosen so the first draw falls below the drop rate
        plan = FaultPlan(seed=0, drop_rate=0.999)
        cluster = faulty_cluster(plan)
        cluster.send(0, 1, "m", nbytes=10)
        inboxes = cluster.deliver()
        assert inboxes[1] == ["m"]
        assert cluster.profile.bytes_by_worker[0] == 20
        assert cluster.profile.messages_dropped == 1

    def test_duplicated_message_delivered_once_bytes_doubled(self):
        plan = FaultPlan(seed=0, duplicate_rate=0.999)
        cluster = faulty_cluster(plan)
        cluster.send(0, 1, "m", nbytes=10)
        inboxes = cluster.deliver()
        assert inboxes[1] == ["m"]
        assert cluster.profile.bytes_by_worker[1] == 20
        assert cluster.profile.messages_duplicated == 1

    def test_local_messages_never_fault(self):
        plan = FaultPlan(seed=0, drop_rate=0.999)
        cluster = faulty_cluster(plan)
        cluster.send(0, 0, "self", nbytes=100)
        inboxes = cluster.deliver()
        assert inboxes[0] == ["self"]
        assert cluster.profile.messages_dropped == 0

    def test_straggler_scales_superstep_time(self):
        plan = FaultPlan(stragglers=(StragglerFault(worker=1, factor=3.0),))
        cluster = faulty_cluster(plan)
        cluster.charge(0, 10)
        cluster.charge(1, 4)
        cluster.deliver()
        # worker 1's 4 ops stretch to 12, overtaking worker 0's 10
        assert cluster.profile.makespan == pytest.approx(12 * 1.0 + 0.5)

    def test_unit_straggler_matches_plain_path(self):
        plan = FaultPlan(stragglers=(StragglerFault(worker=1, factor=1.0),))
        faulty = faulty_cluster(plan)
        plain = Cluster(make_partition(), clock=CLOCK)
        for c in (faulty, plain):
            c.charge(0, 10)
            c.send(0, 1, "m", nbytes=3)
            c.deliver()
        assert faulty.profile.makespan == plain.profile.makespan


class TestCrashRecovery:
    def test_crash_without_checkpoint_replays_from_start(self):
        plan = FaultPlan(crashes=(CrashFault(worker=0, superstep=2),))
        cluster = faulty_cluster(plan)
        times = []
        for step in range(3):
            cluster.charge(0, 10 * (step + 1))
            cluster.deliver()
            times.append(cluster.profile.supersteps[step].time)
        record = cluster.profile.supersteps[2]
        crashed_step = 30 * 1.0 + 0.5
        # replay of steps 0 and 1 plus re-execution of the crashed step
        expected_recovery = times[0] + times[1] + crashed_step
        assert record.recovery_time == pytest.approx(expected_recovery)
        assert record.time == pytest.approx(crashed_step + expected_recovery)
        assert cluster.profile.recovery_time == pytest.approx(expected_recovery)
        assert [e.kind for e in cluster.profile.failures] == ["crash"]
        assert cluster.profile.failures[0].replayed_supersteps == 3

    def test_checkpoint_shortens_replay(self):
        state = {"x": list(range(100))}
        plan = FaultPlan(crashes=(CrashFault(worker=0, superstep=2),))
        cluster = faulty_cluster(
            plan, checkpoint_interval=2, snapshot=lambda: state
        )
        for _ in range(3):
            cluster.charge(0, 10)
            cluster.deliver()
        checkpoint = cluster.checkpoints.last
        assert checkpoint is not None and checkpoint.superstep == 2
        record = cluster.profile.supersteps[2]
        # restore bytes + re-execution of the crashed step only
        crashed_step = 10 * 1.0 + 0.5
        expected = checkpoint.nbytes * CLOCK.byte_cost + crashed_step
        assert record.recovery_time == pytest.approx(expected)
        assert cluster.profile.failures[0].replayed_supersteps == 1

    def test_checkpoint_bytes_charged_to_makespan(self):
        cluster = Cluster(
            make_partition(),
            clock=CLOCK,
            checkpoint_interval=1,
            snapshot=lambda: {"s": 1},
        )
        cluster.charge(0, 10)
        cluster.deliver()
        record = cluster.profile.supersteps[0]
        assert record.checkpoint_bytes > 0
        assert cluster.profile.checkpoint_bytes == record.checkpoint_bytes
        assert record.time == pytest.approx(
            10.5 + record.checkpoint_bytes * CLOCK.byte_cost
        )

    def test_crash_never_reached_is_not_charged(self):
        plan = FaultPlan(crashes=(CrashFault(worker=0, superstep=50),))
        cluster = faulty_cluster(plan)
        cluster.charge(0, 1)
        cluster.deliver()
        assert cluster.profile.recovery_time == 0.0
        assert cluster.profile.failures == []

    def test_set_snapshot_feeds_checkpoints(self):
        cluster = Cluster(make_partition(), clock=CLOCK, checkpoint_interval=1)
        cluster.set_snapshot(lambda: {"labels": [1, 2]})
        cluster.charge(0, 1)
        cluster.deliver()
        assert cluster.checkpoints.last.restore() == {"labels": [1, 2]}
