"""Permanent worker-loss failover: promotion, re-placement, accounting.

Contracts from the issue:

* a ``PermanentLossFault`` never changes algorithm results — the run
  continues on N-1 workers bit-identical to a clean run, while the
  profile gains ``losses`` / ``promoted_masters`` / ``replaced_vertices``
  / ``failover_time`` and the makespan grows;
* the vectorized :class:`FailoverState` array pass agrees decision-for-
  decision with the :class:`ScalarFailoverState` dict/set oracle,
  including across stacked losses;
* fault plans are validated when attached (out-of-range workers and
  all-workers-lost plans are rejected by name), and losing the last
  survivor raises at runtime.
"""

import pytest

from repro.algorithms.registry import get_algorithm
from repro.eval.harness import algorithm_params
from repro.graph.generators import chung_lu_power_law
from repro.partitioners.base import get_partitioner
from repro.runtime.failover import FailoverState, ScalarFailoverState
from repro.runtime.faults import (
    CrashFault,
    FaultPlan,
    PermanentLossFault,
    StragglerFault,
)
from repro.runtime.instrumentation import RunProfile
from repro.runtime.plan import get_plan

LOSS_PLAN = FaultPlan(seed=5, losses=(PermanentLossFault(worker=1, superstep=1),))


@pytest.fixture(scope="module")
def graph():
    return chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    return get_partitioner("fennel").partition(graph, 4)


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_duplicate_loss_worker_rejected():
    with pytest.raises(ValueError, match="only be lost once"):
        FaultPlan(
            losses=(
                PermanentLossFault(worker=1, superstep=0),
                PermanentLossFault(worker=1, superstep=3),
            )
        )


def test_validate_names_out_of_range_crash():
    plan = FaultPlan(crashes=(CrashFault(worker=7, superstep=0),))
    with pytest.raises(ValueError, match="crashes worker 7"):
        plan.validate_for(4)


def test_validate_names_out_of_range_loss():
    plan = FaultPlan(losses=(PermanentLossFault(worker=4, superstep=0),))
    with pytest.raises(ValueError, match="loses worker 4"):
        plan.validate_for(4)


def test_validate_names_out_of_range_straggler():
    plan = FaultPlan(stragglers=(StragglerFault(worker=9, factor=2.0),))
    with pytest.raises(ValueError, match="slows worker 9"):
        plan.validate_for(4)


def test_validate_rejects_losing_every_worker():
    plan = FaultPlan(
        losses=(
            PermanentLossFault(worker=0, superstep=0),
            PermanentLossFault(worker=1, superstep=1),
        )
    )
    with pytest.raises(ValueError, match="survive"):
        plan.validate_for(2)
    plan.validate_for(3)  # one survivor left: fine


def test_attach_time_validation_raises_before_running(partition):
    plan = FaultPlan(losses=(PermanentLossFault(worker=11, superstep=0),))
    with pytest.raises(ValueError, match="loses worker 11"):
        get_algorithm("pr").configure_faults(plan).run(partition)


# ----------------------------------------------------------------------
# Degraded-mode execution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["pr", "wcc", "sssp"])
def test_results_identical_after_permanent_loss(partition, name):
    params = algorithm_params(name, "")
    clean = get_algorithm(name).run(partition, **params)
    lossy = (
        get_algorithm(name).configure_faults(LOSS_PLAN).run(partition, **params)
    )
    assert lossy.values == clean.values
    profile = lossy.profile
    assert profile.losses == 1
    assert profile.promoted_masters > 0
    assert profile.failover_time > 0.0
    assert profile.makespan > clean.makespan
    event = profile.failures[0]
    assert event.kind == "loss"
    assert event.worker == 1
    assert event.superstep == 1
    assert event.promoted_masters == profile.promoted_masters
    assert event.replaced_vertices == profile.replaced_vertices


def test_loss_with_checkpointing_restores_from_checkpoint(partition):
    clean = get_algorithm("pr").run(partition)
    lossy = (
        get_algorithm("pr")
        .configure_faults(LOSS_PLAN, checkpoint_interval=1)
        .run(partition)
    )
    assert lossy.values == clean.values
    assert lossy.profile.losses == 1
    assert lossy.profile.checkpoint_bytes > 0.0
    assert lossy.profile.failover_time > 0.0


def test_stacked_losses_compose(partition):
    plan = FaultPlan(
        losses=(
            PermanentLossFault(worker=1, superstep=1),
            PermanentLossFault(worker=2, superstep=3),
        )
    )
    clean = get_algorithm("pr").run(partition)
    lossy = get_algorithm("pr").configure_faults(plan).run(partition)
    assert lossy.values == clean.values
    assert lossy.profile.losses == 2
    assert len(lossy.profile.failures) == 2
    assert lossy.profile.makespan > clean.makespan


def test_loss_combined_with_crash_and_drops(partition):
    plan = FaultPlan(
        seed=11,
        crashes=(CrashFault(worker=0, superstep=2),),
        losses=(PermanentLossFault(worker=3, superstep=4),),
        drop_rate=0.05,
    )
    clean = get_algorithm("wcc").run(partition)
    faulty = (
        get_algorithm("wcc")
        .configure_faults(plan, checkpoint_interval=2)
        .run(partition)
    )
    assert faulty.values == clean.values
    assert faulty.profile.num_failures == 2  # one crash + one loss
    assert faulty.profile.losses == 1


def test_losing_the_last_survivor_raises():
    graph = chung_lu_power_law(60, 4.0, exponent=2.1, directed=True, seed=3)
    partition = get_partitioner("fennel").partition(graph, 2)
    plan = FaultPlan(losses=(PermanentLossFault(worker=0, superstep=0),))
    plan2 = FaultPlan(
        losses=(
            PermanentLossFault(worker=0, superstep=0),
            PermanentLossFault(worker=1, superstep=2),
        )
    )
    # single loss of one of two workers is fine
    get_algorithm("pr").configure_faults(plan).run(partition)
    with pytest.raises(ValueError, match="survive"):
        get_algorithm("pr").configure_faults(plan2).run(partition)


def test_degraded_runs_are_reproducible(partition):
    runs = [
        get_algorithm("pr").configure_faults(LOSS_PLAN).run(partition)
        for _ in range(2)
    ]
    assert runs[0].makespan == runs[1].makespan
    assert runs[0].profile.failover_time == runs[1].profile.failover_time


# ----------------------------------------------------------------------
# Array pass vs scalar oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("baseline", ["fennel", "dbh"])
def test_failover_state_matches_scalar_oracle(graph, baseline):
    partition = get_partitioner(baseline).partition(graph, 4)
    fast = FailoverState(get_plan(partition))
    slow = ScalarFailoverState(partition)
    for dead, survivors in ((1, [0, 2, 3]), (3, [0, 2])):
        a = fast.fail(dead, survivors)
        b = slow.fail(dead, survivors)
        assert a.same_as(b), f"divergence losing worker {dead} on {baseline}"
    # post-loss routing state must agree too, not just the decisions
    import numpy as np

    assert np.array_equal(
        fast.masters,
        np.asarray([slow.masters[v] for v in range(graph.num_vertices)]),
    )
    for v in range(graph.num_vertices):
        assert set(np.nonzero(fast.copies[v])[0].tolist()) == slow.placement[v]


def test_heir_shares_sum_to_one(graph):
    partition = get_partitioner("fennel").partition(graph, 4)
    decision = FailoverState(get_plan(partition)).fail(2, [0, 1, 3])
    assert decision.heir_shares
    assert abs(sum(decision.heir_shares.values()) - 1.0) < 1e-12
    assert all(fid in (0, 1, 3) for fid in decision.heir_shares)


# ----------------------------------------------------------------------
# Profile serialization
# ----------------------------------------------------------------------
def test_profile_roundtrips_failover_fields(partition):
    profile = (
        get_algorithm("pr").configure_faults(LOSS_PLAN).run(partition).profile
    )
    back = RunProfile.from_dict(profile.to_dict())
    assert back.losses == profile.losses == 1
    assert back.promoted_masters == profile.promoted_masters
    assert back.replaced_vertices == profile.replaced_vertices
    assert back.failover_time == profile.failover_time
    assert back.to_dict() == profile.to_dict()


def test_old_profile_payloads_still_load(partition):
    payload = get_algorithm("pr").run(partition).profile.to_dict()
    for key in ("losses", "promoted_masters", "replaced_vertices", "failover_time"):
        payload.pop(key, None)
    back = RunProfile.from_dict(payload)
    assert back.losses == 0
    assert back.failover_time == 0.0
