"""FailureTrace record/replay across the runtime injection stack.

Contracts from the issue:

* recording is an observer — a recorded run equals an unrecorded one;
* replaying a trace fires the identical fate sequence and produces a
  byte-identical ``RunProfile`` dict, bypassing the seeded draws;
* ``minimize`` returns a 1-minimal sub-trace that still reproduces;
* the committed fixture under ``tests/runtime/traces/`` keeps replaying
  (format stability across commits).
"""

import os
import sys

import pytest

from repro.algorithms.registry import get_algorithm
from repro.cli import main as cli_main
from repro.graph.generators import chung_lu_power_law
from repro.graph.io import write_edge_list
from repro.partition.serialize import save_partition
from repro.partitioners.base import get_partitioner
from repro.runtime.faults import FaultInjector, FaultPlan, PermanentLossFault
from repro.runtime.trace import (
    FailureTrace,
    TraceEvent,
    minimize,
    replay_argv,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "traces", "loss_pr.trace")

PLAN = FaultPlan(
    seed=11,
    losses=(PermanentLossFault(worker=1, superstep=1),),
    drop_rate=0.05,
)


@pytest.fixture(scope="module")
def partition():
    graph = chung_lu_power_law(300, 6.0, exponent=2.1, directed=True, seed=7)
    return get_partitioner("fennel").partition(graph, 4)


def record_run(partition, plan=PLAN, scope="pr"):
    trace = FailureTrace(meta={"command": "test", "plan": plan.to_dict()})
    injector = FaultInjector(plan, trace=trace, trace_scope=scope)
    result = (
        get_algorithm(scope)
        .configure_faults(injector, checkpoint_interval=2)
        .run(partition)
    )
    return trace, result


def replay_run(partition, trace, scope="pr", record=False):
    base = FaultPlan.from_dict(trace.meta["plan"])
    plan = FaultPlan(seed=base.seed, stragglers=base.stragglers)
    rerecorded = (
        FailureTrace(meta=dict(trace.meta)) if record else None
    )
    injector = FaultInjector(
        plan,
        trace=rerecorded,
        trace_scope=scope,
        replay=trace.runtime_replay(scope),
    )
    result = (
        get_algorithm(scope)
        .configure_faults(injector, checkpoint_interval=2)
        .run(partition)
    )
    return rerecorded, result


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path, partition):
    trace, _ = record_run(partition)
    assert len(trace) > 0
    path = str(tmp_path / "t.trace")
    trace.save(path)
    assert FailureTrace.load(path) == trace
    # saving is byte-stable (no timestamps, sorted keys)
    loaded = FailureTrace.load(path)
    path2 = str(tmp_path / "t2.trace")
    loaded.save(path2)
    assert open(path).read() == open(path2).read()


def test_load_rejects_empty_file(tmp_path):
    path = str(tmp_path / "empty.trace")
    open(path, "w").close()
    with pytest.raises(ValueError, match="empty"):
        FailureTrace.load(path)


def test_load_rejects_missing_header(tmp_path):
    path = str(tmp_path / "bad.trace")
    with open(path, "w") as handle:
        handle.write('{"stream": "runtime"}\n')
    with pytest.raises(ValueError, match="trace_format"):
        FailureTrace.load(path)


def test_load_rejects_future_format(tmp_path):
    path = str(tmp_path / "future.trace")
    with open(path, "w") as handle:
        handle.write('{"trace_format": 99, "meta": {}}\n')
    with pytest.raises(ValueError, match="format 99"):
        FailureTrace.load(path)


def test_load_rejects_malformed_event(tmp_path):
    path = str(tmp_path / "mangled.trace")
    with open(path, "w") as handle:
        handle.write('{"trace_format": 1, "meta": {}}\n')
        handle.write('{"stream": "runtime"}\n')
    with pytest.raises(ValueError, match="line 2"):
        FailureTrace.load(path)


# ----------------------------------------------------------------------
# Record / replay semantics
# ----------------------------------------------------------------------
def test_recording_is_an_observer(partition):
    _, recorded = record_run(partition)
    plain = (
        get_algorithm("pr")
        .configure_faults(PLAN, checkpoint_interval=2)
        .run(partition)
    )
    assert recorded.values == plain.values
    assert recorded.profile.to_dict() == plain.profile.to_dict()


def test_replay_fires_identical_fate_sequence(partition):
    trace, recorded = record_run(partition)
    rerecorded, replayed = replay_run(partition, trace, record=True)
    assert replayed.values == recorded.values
    assert replayed.profile.to_dict() == recorded.profile.to_dict()
    assert rerecorded.events == trace.events


def test_replay_ignores_the_seeded_draws(partition):
    trace, recorded = record_run(partition)
    # Mangle the recorded seed: replay must not care, fates come from
    # the trace, and only declarative stragglers survive from the plan.
    trace.meta["plan"]["seed"] = 12345
    trace.meta["plan"]["drop_rate"] = 0.0
    _, replayed = replay_run(partition, trace)
    assert replayed.profile.messages_dropped == recorded.profile.messages_dropped
    assert replayed.profile.losses == recorded.profile.losses


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def test_minimize_reduces_to_the_loss_event():
    graph = chung_lu_power_law(80, 5.0, exponent=2.1, directed=True, seed=3)
    partition = get_partitioner("fennel").partition(graph, 3)
    trace, _ = record_run(partition)
    assert len(trace) > 1  # drops plus the loss

    def reproduces(candidate):
        _, result = replay_run(partition, candidate)
        return result.profile.losses == 1

    reduced = minimize(trace, reproduces)
    assert len(reduced) == 1
    assert reduced.events[0].kind == "loss"
    assert reproduces(reduced)  # minimize output still reproduces


def test_minimize_rejects_non_reproducing_trace(partition):
    trace, _ = record_run(partition)
    with pytest.raises(ValueError, match="does not reproduce"):
        minimize(trace, lambda candidate: False)


# ----------------------------------------------------------------------
# replay_argv
# ----------------------------------------------------------------------
def test_replay_argv_strips_trace_flags():
    meta = {
        "argv": [
            "evaluate",
            "--trace-out",
            "old.trace",
            "--graph",
            "g.txt",
            "--trace-in=other.trace",
        ]
    }
    assert replay_argv(meta, "new.trace") == [
        "evaluate",
        "--graph",
        "g.txt",
        "--trace-in",
        "new.trace",
    ]


# ----------------------------------------------------------------------
# Committed fixture: format stability
# ----------------------------------------------------------------------
def test_committed_fixture_still_replays(partition):
    trace = FailureTrace.load(FIXTURE)
    assert trace.meta["plan"] == PLAN.to_dict()
    _, replayed = replay_run(partition, trace)
    clean = get_algorithm("pr").run(partition)
    assert replayed.values == clean.values
    assert replayed.profile.losses == 1
    assert replayed.profile.messages_dropped == sum(
        1
        for e in trace.events
        if e.kind == "message" and e.payload["fate"] == "drop"
    )


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cli_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    graph = chung_lu_power_law(80, 5.0, exponent=2.1, directed=True, seed=3)
    gpath, ppath = str(root / "g.txt"), str(root / "p.json")
    write_edge_list(graph, gpath)
    save_partition(get_partitioner("fennel").partition(graph, 3), ppath)
    return gpath, ppath


def test_cli_record_show_replay(tmp_path, capsys, cli_files):
    gpath, ppath = cli_files
    tpath = str(tmp_path / "cli.trace")
    argv = [
        "evaluate",
        "--graph", gpath,
        "--partition", ppath,
        "--algorithms", "pr",
        "--lose", "1:1",
        "--drop-rate", "0.05",
        "--faults-seed", "11",
    ]
    assert cli_main(argv + ["--trace-out", tpath]) == 0
    recorded_table = capsys.readouterr().out
    assert os.path.exists(tpath)

    assert cli_main(["trace", "show", tpath]) == 0
    shown = capsys.readouterr().out
    assert "loss" in shown and "command: cli" in shown

    assert cli_main(["trace", "replay", tpath]) == 0
    replayed_table = capsys.readouterr().out
    assert replayed_table == recorded_table


def test_cli_minimize_with_check_command(tmp_path, cli_files):
    gpath, ppath = cli_files
    tpath = str(tmp_path / "cli.trace")
    assert (
        cli_main(
            [
                "evaluate",
                "--graph", gpath,
                "--partition", ppath,
                "--algorithms", "pr",
                "--lose", "1:1",
                "--drop-rate", "0.1",
                "--faults-seed", "11",
                "--trace-out", tpath,
            ]
        )
        == 0
    )
    checker = str(tmp_path / "check.py")
    with open(checker, "w") as handle:
        handle.write(
            "import sys\n"
            'sys.exit(1 if \'"kind": "loss"\' in open(sys.argv[1]).read() else 0)\n'
        )
    out = str(tmp_path / "min.trace")
    assert (
        cli_main(
            [
                "trace",
                "minimize",
                tpath,
                "--out", out,
                "--check", f"{sys.executable} {checker} {{trace}}",
            ]
        )
        == 0
    )
    reduced = FailureTrace.load(out)
    assert len(reduced) == 1
    assert reduced.events[0].kind == "loss"


def test_cli_minimize_requires_out(tmp_path):
    tpath = str(tmp_path / "t.trace")
    FailureTrace(meta={"command": "cli"}).save(tpath)
    assert cli_main(["trace", "minimize", tpath]) == 2
