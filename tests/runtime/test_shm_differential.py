"""Differential suite: shm execution backend vs. the in-process kernels.

The shared-memory backend runs fragment compute in real worker
processes over zero-copy views of the compiled
:class:`~repro.runtime.plan.FragmentPlan` arrays — but the simulated
:class:`~repro.runtime.costclock.CostClock` remains the sole metrics
source, so ``AlgorithmResult.values``, makespans, and every
:class:`RunProfile` field must stay *bit-identical* to the in-process
``simulated`` backend.  The grid asserts that across all five
algorithms x both cut types x {clean, faulty+checkpointed,
checkpoint-only, permanent worker loss}.

A second group property-tests shared-segment hygiene: no ``/dev/shm``
entry may outlive a run, including runs torn down by an injected
worker crash mid-dispatch.
"""

import os

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.generators import chung_lu_power_law
from repro.partition.hybrid import HybridPartition
from repro.runtime import shm as shm_mod
from repro.runtime.faults import (
    CrashFault,
    FaultPlan,
    PermanentLossFault,
    StragglerFault,
)
from repro.runtime.parallel import (
    ShmWorkerError,
    backend_default,
    crash_next_dispatch,
    last_shm_stats,
    set_backend_default,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(),
    reason="POSIX shared-memory backend requires Linux",
)

ALGORITHMS = ("pr", "wcc", "sssp", "tc", "cn")

FAULT_PLAN = FaultPlan(
    seed=11,
    crashes=(CrashFault(worker=1, superstep=1),),
    drop_rate=0.08,
    duplicate_rate=0.04,
    stragglers=(StragglerFault(worker=2, factor=2.0),),
)

LOSS_PLAN = FaultPlan(
    seed=13,
    losses=(PermanentLossFault(worker=1, superstep=1),),
)

#: fault-free, faulty + checkpointed, checkpoint-only, permanent loss
CONFIGS = {
    "clean": {},
    "faulty": {"faults": FAULT_PLAN, "checkpoint_interval": 2},
    "checkpointed": {"checkpoint_interval": 2},
    "lost": {"faults": LOSS_PLAN, "checkpoint_interval": 2},
}

_PARTITIONS = {}


def _partition(directed, cut):
    """Build (and cache) the 4-fragment test partition for one cell."""
    key = (directed, cut)
    if key not in _PARTITIONS:
        graph = chung_lu_power_law(
            90, avg_degree=4.0, exponent=2.5, seed=3, directed=directed
        )
        rng = np.random.default_rng(7)
        if cut == "vertex":
            edges = list(graph.edges())
            assignment = {
                e: int(f)
                for e, f in zip(edges, rng.integers(0, 4, size=len(edges)))
            }
            part = HybridPartition.from_edge_assignment(graph, assignment, 4)
        else:
            assignment = rng.integers(0, 4, size=graph.num_vertices)
            part = HybridPartition.from_vertex_assignment(
                graph, assignment.tolist(), 4
            )
        _PARTITIONS[key] = part
    return _PARTITIONS[key]


def _shm_leftovers():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("rshm-")}
    except OSError:  # pragma: no cover - /dev/shm missing
        return set()


# ----------------------------------------------------------------------
# Bit-identity grid


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("cut", ["edge", "vertex"])
@pytest.mark.parametrize("directed", [True, False], ids=["directed", "undirected"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_shm_matches_simulated(algorithm, directed, cut, config_name):
    partition = _partition(directed, cut)
    config = CONFIGS[config_name]
    alg = get_algorithm(algorithm)
    sim = alg.run(partition, backend="simulated", **dict(config))
    shm = alg.run(partition, backend="shm", shm_workers=2, **dict(config))
    assert sim.values == shm.values
    assert sim.makespan == shm.makespan
    assert sim.profile.to_dict() == shm.profile.to_dict()
    assert not shm_mod.live_arena_names()


def test_backend_default_process_wide():
    partition = _partition(True, "edge")
    baseline = get_algorithm("pr").run(partition, backend="simulated")
    previous = set_backend_default("shm", 2)
    try:
        assert backend_default() == "shm"
        via_default = get_algorithm("pr").run(partition)
        assert via_default.profile.to_dict() == baseline.profile.to_dict()
    finally:
        set_backend_default(*previous)
    assert backend_default() == "simulated"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        get_algorithm("pr").run(_partition(True, "edge"), backend="mpi")
    with pytest.raises(ValueError):
        set_backend_default("mpi")


def test_shm_requires_kernels():
    partition = _partition(True, "edge")
    with pytest.raises(ValueError, match="use_kernels"):
        get_algorithm("pr").run(partition, backend="shm", use_kernels=False)


def test_wall_time_measured_but_never_serialized():
    partition = _partition(True, "edge")
    result = get_algorithm("pr").run(partition, backend="shm", shm_workers=2)
    profile = result.profile
    assert profile.wall_time_s > 0.0
    assert profile.wall_time_s == pytest.approx(
        sum(r.wall_time_s for r in profile.supersteps)
    )
    payload = profile.to_dict()
    assert "wall_time_s" not in payload
    assert all("wall_time_s" not in s for s in payload["supersteps"])


def test_last_shm_stats_exposes_dispatch_accounting():
    partition = _partition(True, "edge")
    get_algorithm("pr").run(partition, backend="shm", shm_workers=2)
    stats = last_shm_stats()
    assert stats is not None
    assert stats["num_workers"] == 2
    assert stats["dispatches"] > 0
    assert set(stats["seconds_by_worker"]) == {0, 1}
    assert all(s >= 0.0 for s in stats["seconds_by_fragment"].values())


# ----------------------------------------------------------------------
# Segment hygiene: nothing in /dev/shm outlives a run, even on a crash


def test_no_leaked_segments_across_grid():
    before = _shm_leftovers()
    partition = _partition(True, "vertex")
    for algorithm in ALGORITHMS:
        get_algorithm(algorithm).run(partition, backend="shm", shm_workers=2)
    assert shm_mod.live_arena_names() == []
    assert _shm_leftovers() == before


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    algorithm=st.sampled_from(ALGORITHMS),
    workers=st.integers(1, 2),
    cut=st.sampled_from(["edge", "vertex"]),
)
def test_worker_crash_unwinds_without_leaks(algorithm, workers, cut):
    partition = _partition(True, cut)
    before = _shm_leftovers()
    crash_next_dispatch()
    with pytest.raises(ShmWorkerError):
        get_algorithm(algorithm).run(
            partition, backend="shm", shm_workers=workers
        )
    # The dying run unlinked its arena and condemned the pool ...
    assert shm_mod.live_arena_names() == []
    assert _shm_leftovers() == before
    # ... and a fresh pool serves the next run bit-identically.
    sim = get_algorithm(algorithm).run(partition, backend="simulated")
    shm = get_algorithm(algorithm).run(
        partition, backend="shm", shm_workers=workers
    )
    assert sim.profile.to_dict() == shm.profile.to_dict()
    assert _shm_leftovers() == before


# ----------------------------------------------------------------------
# Arena unit behavior


def test_arena_builder_roundtrip_and_duplicate_key():
    builder = shm_mod.ArenaBuilder()
    a = np.arange(7, dtype=np.int64)
    b = np.linspace(0.0, 1.0, 5)
    builder.add("a", a)
    builder.add_zeros("z", (3,), np.float64)
    builder.add("b", b)
    with pytest.raises(ValueError, match="duplicate"):
        builder.add("a", a)
    builder.add("empty", np.empty(0, dtype=np.int8))
    arena = builder.seal()
    try:
        assert arena.name in shm_mod.live_arena_names()
        np.testing.assert_array_equal(arena.view("a"), a)
        np.testing.assert_array_equal(arena.view("b"), b)
        assert not arena.view("z").any()
        assert arena.view("empty").size == 0
        for key in ("a", "b", "z"):
            offset, _, _ = arena.manifest[key]
            assert offset % shm_mod.ALIGN == 0
        # Attach from the payload sees the same bytes (same process
        # here; workers do exactly this after unpickling the payload).
        twin = shm_mod.SharedArena.attach(arena.payload())
        try:
            np.testing.assert_array_equal(twin.view("a"), a)
            assert not twin.owner
        finally:
            twin.close()
    finally:
        arena.close(unlink=True)
        arena.close(unlink=True)  # idempotent
    assert arena.name not in shm_mod.live_arena_names()
