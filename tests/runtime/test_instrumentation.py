"""Tests for run profiles and superstep records."""

import pytest

from repro.runtime.costclock import CostClock
from repro.runtime.instrumentation import RunProfile, SuperstepRecord


def test_superstep_record_maxima():
    record = SuperstepRecord(
        index=0,
        ops_by_worker={0: 5.0, 1: 9.0},
        bytes_by_worker={0: 2.0, 1: 1.0},
        time=1.0,
    )
    assert record.max_ops == 9.0
    assert record.max_bytes == 2.0


def test_superstep_record_empty_maxima():
    record = SuperstepRecord(index=0, ops_by_worker={}, bytes_by_worker={}, time=0.0)
    assert record.max_ops == 0.0
    assert record.max_bytes == 0.0


def test_profile_totals_and_worker_time():
    profile = RunProfile(
        num_workers=2,
        comp_ops_by_worker={0: 100.0, 1: 50.0},
        bytes_by_worker={0: 10.0},
    )
    assert profile.total_ops == 150.0
    assert profile.total_bytes == 10.0
    clock = CostClock(op_cost=1.0, byte_cost=2.0, superstep_latency=0.0)
    assert profile.worker_time(0, clock) == pytest.approx(120.0)
    assert profile.worker_time(1, clock) == pytest.approx(50.0)
    assert profile.worker_time(9, clock) == 0.0


def test_profile_summary_mentions_makespan():
    profile = RunProfile(num_workers=1, makespan=0.5)
    assert "ms" in profile.summary()
    assert profile.num_supersteps == 0
