"""Tests for run profiles and superstep records."""

import json

import pytest

from repro.runtime.costclock import CostClock
from repro.runtime.instrumentation import FailureEvent, RunProfile, SuperstepRecord


def test_superstep_record_maxima():
    record = SuperstepRecord(
        index=0,
        ops_by_worker={0: 5.0, 1: 9.0},
        bytes_by_worker={0: 2.0, 1: 1.0},
        time=1.0,
    )
    assert record.max_ops == 9.0
    assert record.max_bytes == 2.0


def test_superstep_record_empty_maxima():
    record = SuperstepRecord(index=0, ops_by_worker={}, bytes_by_worker={}, time=0.0)
    assert record.max_ops == 0.0
    assert record.max_bytes == 0.0


def test_profile_totals_and_worker_time():
    profile = RunProfile(
        num_workers=2,
        comp_ops_by_worker={0: 100.0, 1: 50.0},
        bytes_by_worker={0: 10.0},
    )
    assert profile.total_ops == 150.0
    assert profile.total_bytes == 10.0
    clock = CostClock(op_cost=1.0, byte_cost=2.0, superstep_latency=0.0)
    assert profile.worker_time(0, clock) == pytest.approx(120.0)
    assert profile.worker_time(1, clock) == pytest.approx(50.0)
    assert profile.worker_time(9, clock) == 0.0


def test_profile_summary_mentions_makespan():
    profile = RunProfile(num_workers=1, makespan=0.5)
    assert "ms" in profile.summary()
    assert profile.num_supersteps == 0


def _full_profile() -> RunProfile:
    """A profile exercising every serialized field, faults included."""
    crash = FailureEvent(
        kind="crash", worker=1, superstep=3, recovery_time=0.25, replayed_supersteps=2
    )
    step = SuperstepRecord(
        index=3,
        ops_by_worker={0: 5.0, 1: 9.5},
        bytes_by_worker={0: 2.0, 1: 1.25},
        time=0.125,
        failures=[crash],
        recovery_time=0.25,
        checkpoint_bytes=64.0,
    )
    return RunProfile(
        num_workers=2,
        comp_ops_by_copy={(7, 0): 3.0, (7, 1): 1.0, (12, 0): 2.5},
        comm_bytes_by_master={7: 16.0, 12: 8.0},
        comp_ops_by_worker={0: 100.0, 1: 50.0},
        bytes_by_worker={0: 10.0, 1: 14.0},
        supersteps=[step],
        makespan=0.5078125,
        failures=[crash],
        recovery_time=0.25,
        checkpoint_bytes=64.0,
        messages_dropped=3,
        messages_duplicated=1,
    )


def test_profile_dict_round_trip_is_exact():
    profile = _full_profile()
    restored = RunProfile.from_dict(profile.to_dict())
    assert restored == profile


def test_profile_round_trip_survives_json():
    profile = _full_profile()
    payload = json.loads(json.dumps(profile.to_dict()))
    restored = RunProfile.from_dict(payload)
    assert restored == profile
    # Floats must replay bit-exactly, not approximately: the evaluation
    # engine's cache stores these payloads and warm runs print them.
    assert restored.makespan == profile.makespan
    assert restored.supersteps[0].ops_by_worker == profile.supersteps[0].ops_by_worker


def test_profile_round_trip_failure_and_recovery_fields():
    restored = RunProfile.from_dict(_full_profile().to_dict())
    assert restored.num_failures == 1
    event = restored.failures[0]
    assert (event.kind, event.worker, event.superstep) == ("crash", 1, 3)
    assert event.recovery_time == 0.25
    assert event.replayed_supersteps == 2
    assert restored.recovery_time == 0.25
    assert restored.checkpoint_bytes == 64.0
    assert restored.messages_dropped == 3
    assert restored.messages_duplicated == 1
    assert restored.supersteps[0].failures == [event]


def test_profile_from_dict_defaults_optional_fault_fields():
    payload = _full_profile().to_dict()
    for key in ("failures", "recovery_time", "checkpoint_bytes",
                "messages_dropped", "messages_duplicated"):
        payload.pop(key)
    payload["supersteps"][0].pop("failures")
    restored = RunProfile.from_dict(payload)
    assert restored.failures == []
    assert restored.recovery_time == 0.0
    assert restored.supersteps[0].failures == []
    assert restored.messages_dropped == 0
