"""Unit tests for :mod:`repro.runtime.clusterspec`.

Validation must fail loudly *at construction*, naming the offending
worker or link — a bad capacity that slipped through would silently
skew every downstream makespan.
"""

import json
import math

import pytest

from repro.runtime.clusterspec import (
    ClusterSpec,
    cluster_spec_default,
    coerce_cluster_spec,
    effective_spec,
    set_cluster_spec_default,
    spec_payload,
)


def _spec(**kwargs):
    base = dict(speeds=(1.0, 2.0), bandwidths=(1.0, 0.5))
    base.update(kwargs)
    return ClusterSpec(**base)


class TestValidation:
    def test_valid_spec_constructs(self):
        spec = _spec(links=((0, 1, 0.25),))
        assert spec.num_workers == 2
        assert not spec.is_uniform

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_speed_names_worker(self, bad):
        with pytest.raises(ValueError, match="worker 1"):
            _spec(speeds=(1.0, bad))

    @pytest.mark.parametrize("bad", [0.0, -0.5, float("nan"), float("inf")])
    def test_bad_bandwidth_names_worker(self, bad):
        with pytest.raises(ValueError, match="worker 0"):
            _spec(bandwidths=(bad, 1.0))

    def test_bad_link_bandwidth_names_link(self):
        with pytest.raises(ValueError, match=r"link 0->1"):
            _spec(links=((0, 1, -2.0),))

    def test_link_outside_cluster(self):
        with pytest.raises(ValueError, match=r"link 0->7"):
            _spec(links=((0, 7, 1.0),))

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match=r"link 1->1"):
            _spec(links=((1, 1, 1.0),))

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError, match=r"link 0->1.*more than once"):
            _spec(links=((0, 1, 0.5), (0, 1, 0.25)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="2 speeds but 3 bandwidths"):
            ClusterSpec(speeds=(1.0, 1.0), bandwidths=(1.0, 1.0, 1.0))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ClusterSpec(speeds=(), bandwidths=())

    def test_validate_for_mismatch(self):
        with pytest.raises(ValueError, match="describes 2 workers.*has 4"):
            _spec().validate_for(4)

    def test_validate_for_match_passes(self):
        _spec().validate_for(2)


class TestQueries:
    def test_uniform_is_uniform(self):
        assert ClusterSpec.uniform(3).is_uniform

    def test_all_ones_with_degraded_link_is_not_uniform(self):
        spec = ClusterSpec((1.0, 1.0), (1.0, 1.0), links=((0, 1, 0.5),))
        assert not spec.is_uniform

    def test_link_bandwidth_is_min_of_endpoints(self):
        spec = _spec()  # bandwidths (1.0, 0.5)
        assert spec.link_bandwidth(0, 1) == 0.5
        assert spec.link_bandwidth(1, 0) == 0.5

    def test_link_override_wins(self):
        spec = _spec(links=((0, 1, 0.125),))
        assert spec.link_bandwidth(0, 1) == 0.125
        assert spec.link_bandwidth(1, 0) == 0.5

    def test_min_capacities(self):
        spec = _spec(links=((0, 1, 0.125),))
        assert spec.min_speed == 1.0
        assert spec.min_bandwidth == 0.125


class TestSerialization:
    def test_round_trip_identity(self):
        spec = _spec(links=((0, 1, 0.25),))
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json_text(self):
        spec = _spec(links=((1, 0, 0.3),))
        assert ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_save_load(self, tmp_path):
        spec = _spec(links=((0, 1, 0.25),))
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ClusterSpec.load(path) == spec

    def test_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="missing 'bandwidths'"):
            ClusterSpec.from_dict({"speeds": [1.0]})

    def test_from_dict_bad_link_key(self):
        with pytest.raises(ValueError, match="'src->dst'"):
            ClusterSpec.from_dict(
                {"speeds": [1.0, 1.0], "bandwidths": [1.0, 1.0], "links": {"0-1": 1.0}}
            )

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            ClusterSpec.from_dict([1.0, 2.0])

    def test_digest_distinguishes_specs(self):
        assert _spec().digest() == _spec().digest()
        assert _spec().digest() != ClusterSpec.uniform(2).digest()


class TestCoercionAndDefaults:
    def test_coerce_none_and_spec(self):
        spec = _spec()
        assert coerce_cluster_spec(None) is None
        assert coerce_cluster_spec(spec) is spec

    def test_coerce_mapping_and_path(self, tmp_path):
        spec = _spec()
        assert coerce_cluster_spec(spec.to_dict()) == spec
        path = tmp_path / "spec.json"
        spec.save(path)
        assert coerce_cluster_spec(str(path)) == spec

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            coerce_cluster_spec(42)

    def test_effective_spec_collapses_uniform(self):
        assert effective_spec(None) is None
        assert effective_spec(ClusterSpec.uniform(4)) is None
        skewed = _spec()
        assert effective_spec(skewed) is skewed

    def test_default_round_trip(self):
        spec = _spec()
        previous = set_cluster_spec_default(spec)
        try:
            assert cluster_spec_default() is spec
        finally:
            set_cluster_spec_default(previous)
        assert cluster_spec_default() is previous

    def test_spec_payload_collapses_and_falls_back(self):
        assert spec_payload(None) is None
        assert spec_payload(ClusterSpec.uniform(3)) is None
        skewed = _spec()
        assert spec_payload(skewed) == skewed.to_dict()
        previous = set_cluster_spec_default(skewed)
        try:
            # None falls back to the process default ...
            assert spec_payload(None) == skewed.to_dict()
            # ... but an explicit uniform spec shields from it.
            assert spec_payload(ClusterSpec.uniform(2)) is None
        finally:
            set_cluster_spec_default(previous)
