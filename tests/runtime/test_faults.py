"""Tests for deterministic fault injection."""

import pytest

from repro.runtime.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    MessageFate,
    StragglerFault,
)


class TestPlanValidation:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty

    def test_any_fault_makes_plan_nonempty(self):
        assert not FaultPlan(crashes=(CrashFault(0, 1),)).is_empty
        assert not FaultPlan(drop_rate=0.1).is_empty
        assert not FaultPlan(duplicate_rate=0.1).is_empty
        assert not FaultPlan(stragglers=(StragglerFault(0, 2.0),)).is_empty

    def test_rates_must_be_fractions(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError, match="duplicate_rate"):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ValueError, match="below 1"):
            FaultPlan(drop_rate=0.6, duplicate_rate=0.6)

    def test_crash_coordinates_validated(self):
        with pytest.raises(ValueError, match="worker"):
            CrashFault(worker=-1, superstep=0)
        with pytest.raises(ValueError, match="superstep"):
            CrashFault(worker=0, superstep=-2)

    def test_straggler_factor_validated(self):
        with pytest.raises(ValueError, match="factor"):
            StragglerFault(worker=0, factor=0.5)
        with pytest.raises(ValueError, match="factor"):
            StragglerFault(worker=0, factor=float("nan"))
        with pytest.raises(ValueError, match="factor"):
            StragglerFault(worker=0, factor=float("inf"))

    def test_plan_accepts_lists(self):
        plan = FaultPlan(crashes=[CrashFault(0, 1)], stragglers=[StragglerFault(1, 2.0)])
        assert isinstance(plan.crashes, tuple)
        assert isinstance(plan.stragglers, tuple)


class TestDeterminism:
    def test_message_fates_reproducible(self):
        plan = FaultPlan(seed=42, drop_rate=0.2, duplicate_rate=0.1)
        injector_a = FaultInjector(plan)
        injector_b = FaultInjector(plan)
        fates_a = [injector_a.message_fate(s, 0, 1) for s in range(500)]
        fates_b = [injector_b.message_fate(s, 0, 1) for s in range(500)]
        assert fates_a == fates_b

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1, drop_rate=0.5))
        b = FaultInjector(FaultPlan(seed=2, drop_rate=0.5))
        fates_a = [a.message_fate(0, 0, 1) for _ in range(200)]
        fates_b = [b.message_fate(0, 0, 1) for _ in range(200)]
        assert fates_a != fates_b

    def test_rates_approximately_honoured(self):
        injector = FaultInjector(FaultPlan(seed=3, drop_rate=0.3, duplicate_rate=0.2))
        fates = [injector.message_fate(0, 0, 1) for _ in range(5000)]
        drop = fates.count(MessageFate.DROP) / len(fates)
        dup = fates.count(MessageFate.DUPLICATE) / len(fates)
        assert drop == pytest.approx(0.3, abs=0.03)
        assert dup == pytest.approx(0.2, abs=0.03)
        assert injector.messages_dropped == fates.count(MessageFate.DROP)
        assert injector.messages_duplicated == fates.count(MessageFate.DUPLICATE)

    def test_zero_rates_always_deliver(self):
        injector = FaultInjector(FaultPlan(seed=9))
        assert all(
            injector.message_fate(0, 0, 1) is MessageFate.DELIVER for _ in range(100)
        )


class TestCrashes:
    def test_crash_fires_once(self):
        plan = FaultPlan(crashes=(CrashFault(worker=2, superstep=5),))
        injector = FaultInjector(plan)
        assert injector.crashes_at(4) == []
        assert injector.crashes_at(5) == [CrashFault(2, 5)]
        assert injector.crashes_at(5) == []
        assert injector.crashes_injected == 1

    def test_multiple_crashes_same_step(self):
        plan = FaultPlan(crashes=(CrashFault(0, 1), CrashFault(1, 1)))
        assert len(FaultInjector(plan).crashes_at(1)) == 2


class TestStragglers:
    def test_factor_defaults_to_one(self):
        injector = FaultInjector(FaultPlan())
        assert injector.straggler_factor(0, 0) == 1.0

    def test_factor_applies_to_window(self):
        plan = FaultPlan(stragglers=(StragglerFault(1, 3.0, start=2, until=4),))
        injector = FaultInjector(plan)
        assert injector.straggler_factor(1, 1) == 1.0
        assert injector.straggler_factor(1, 2) == 3.0
        assert injector.straggler_factor(1, 3) == 3.0
        assert injector.straggler_factor(1, 4) == 1.0
        assert injector.straggler_factor(0, 2) == 1.0

    def test_factors_compose(self):
        plan = FaultPlan(
            stragglers=(StragglerFault(0, 2.0), StragglerFault(0, 1.5))
        )
        assert FaultInjector(plan).straggler_factor(0, 7) == 3.0
