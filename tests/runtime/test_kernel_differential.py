"""Differential suite: vectorized kernels vs. the scalar reference loops.

Every algorithm carries two implementations that must agree *bit for
bit*: identical ``AlgorithmResult.values``, identical makespans, and
identical :class:`RunProfile` records — fault-free, under a seeded
:class:`FaultPlan`, and with checkpointing enabled (checkpoint byte
counts are pickle sizes of the snapshot state, so even the snapshot
representations must match).

The grid covers all five algorithms x three graph families x
{directed, undirected} x {fault-free, faults+checkpoints, checkpoints
only} on both an edge-cut and a vertex-cut partition.

A second group property-tests :class:`FragmentPlan` routing tables
against brute-force recomputation from the partition, including after
mutations (the plan must invalidate and rebuild, never serve stale
tables).
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.digraph import Graph
from repro.graph.generators import chung_lu_power_law, road_grid, small_world
from repro.partition.hybrid import HybridPartition
from repro.runtime.faults import CrashFault, FaultPlan, StragglerFault
from repro.runtime.plan import (
    DUMMY,
    ECUT,
    VCUT,
    FragmentPlan,
    get_plan,
    plan_stats,
)

ALGORITHMS = ("pr", "wcc", "sssp", "tc", "cn")

FAULT_PLAN = FaultPlan(
    seed=11,
    crashes=(CrashFault(worker=1, superstep=1),),
    drop_rate=0.08,
    duplicate_rate=0.04,
    stragglers=(StragglerFault(worker=2, factor=2.0),),
)

#: runtime configs: fault-free, faulty + checkpointed, checkpoint-only
CONFIGS = {
    "clean": {},
    "faulty": {"faults": FAULT_PLAN, "checkpoint_interval": 2},
    "checkpointed": {"checkpoint_interval": 2},
}


def _as_directed(graph):
    return Graph(graph.num_vertices, list(graph.edges()), directed=True)


def _families(directed):
    grid = road_grid(8, 8, seed=3)
    sw = small_world(60, 4, 0.2, seed=5)
    return {
        "powerlaw": chung_lu_power_law(
            90, 5.0, exponent=2.1, directed=directed, seed=7
        ),
        "grid": _as_directed(grid) if directed else grid,
        "smallworld": _as_directed(sw) if directed else sw,
    }


def _edge_cut(graph, n=4, seed=0):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n, size=graph.num_vertices)
    return HybridPartition.from_vertex_assignment(graph, assignment.tolist(), n)


def _vertex_cut(graph, n=4, seed=0):
    rng = np.random.default_rng(seed)
    assignment = {e: int(rng.integers(0, n)) for e in graph.edges()}
    return HybridPartition.from_edge_assignment(graph, assignment, n)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("directed", [True, False], ids=["directed", "undirected"])
@pytest.mark.parametrize("family", ["powerlaw", "grid", "smallworld"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_kernel_matches_scalar(algorithm, family, directed, config_name):
    graph = _families(directed)[family]
    config = CONFIGS[config_name]
    alg = get_algorithm(algorithm)
    for partition in (_edge_cut(graph), _vertex_cut(graph)):
        scalar = alg.run(partition, use_kernels=False, **dict(config))
        kernel = alg.run(partition, use_kernels=True, **dict(config))
        assert scalar.values == kernel.values
        assert scalar.makespan == kernel.makespan
        assert scalar.profile.to_dict() == kernel.profile.to_dict()


def test_plan_generation_counter_invalidation():
    """Plan reuse is generation-keyed; refiners pay no listener churn."""
    graph = _families(True)["powerlaw"]
    partition = _edge_cut(graph)
    listeners_before = len(partition._listeners)
    gen = partition.generation
    plan = get_plan(partition)
    assert get_plan(partition) is plan
    # get_plan registers no mutation listeners: validity is checked by
    # comparing generation counters instead.
    assert len(partition._listeners) == listeners_before
    assert plan.valid

    v, target = next(
        (u, fid)
        for u in partition.fragments[0].vertices()
        for fid in range(partition.num_fragments)
        if fid not in partition.placement(u)
    )
    assert partition.add_vertex_to(target, v)
    assert partition.generation > gen
    assert not plan.valid
    # Forcing valid=True cannot resurrect a plan from an older generation.
    plan.valid = True
    assert not plan.valid
    rebuilt = get_plan(partition)
    assert rebuilt is not plan
    assert rebuilt.valid


def test_wall_time_recorded_on_simulated_backend():
    """wall_time_s is measured on every backend, serialized on none."""
    graph = _families(True)["powerlaw"]
    partition = _edge_cut(graph)
    profile = get_algorithm("pr").run(partition).profile
    assert profile.wall_time_s > 0.0
    assert profile.wall_time_s == sum(r.wall_time_s for r in profile.supersteps)
    payload = profile.to_dict()
    assert "wall_time_s" not in payload
    assert all("wall_time_s" not in s for s in payload["supersteps"])


def test_kernels_default_process_wide():
    from repro.algorithms.base import kernels_default, set_kernels_default

    graph = _families(True)["powerlaw"]
    partition = _edge_cut(graph)
    baseline = get_algorithm("pr").run(partition, use_kernels=False)
    previous = set_kernels_default(False)
    try:
        assert kernels_default() is False
        off = get_algorithm("pr").run(partition)
        assert off.profile.to_dict() == baseline.profile.to_dict()
    finally:
        set_kernels_default(previous)


# ----------------------------------------------------------------------
# FragmentPlan routing tables vs. brute force, including after mutations
# ----------------------------------------------------------------------
SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ROLE_OF = {ECUT: "e-cut", VCUT: "v-cut", DUMMY: "dummy"}


@st.composite
def partition_cases(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    directed = draw(st.booleans())
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=3 * n,
        )
    )
    graph = Graph(n, edges, directed=directed)
    k = draw(st.integers(min_value=1, max_value=4))
    if draw(st.booleans()):
        assignment = [draw(st.integers(0, k - 1)) for _ in range(n)]
        partition = HybridPartition.from_vertex_assignment(graph, assignment, k)
    else:
        edge_assignment = {e: draw(st.integers(0, k - 1)) for e in graph.edges()}
        partition = HybridPartition.from_edge_assignment(graph, edge_assignment, k)
    return draw(st.just(partition))


def _check_routing_tables(plan: FragmentPlan, partition: HybridPartition):
    """Brute-force every routing table against the partition's own answers."""
    placed = dict(partition.vertex_fragments())
    for v in range(partition.graph.num_vertices):
        hosts = placed.get(v)
        if hosts is None:
            assert plan.master_of[v] == -1
            assert plan.rep_count[v] == 0
            assert not plan.border_mask[v]
            assert plan.place_indptr[v] == plan.place_indptr[v + 1]
            continue
        assert plan.master_of[v] == partition.master(v)
        assert plan.rep_count[v] == len(hosts)
        assert bool(plan.border_mask[v]) == partition.is_border(v)
        row = plan.place_fids[plan.place_indptr[v] : plan.place_indptr[v + 1]]
        assert row.tolist() == sorted(partition.placement(v))
        home = partition.designated_home(v)
        assert plan.home_of()[v] == (-1 if home is None else home)
    for fragment in partition.fragments:
        fid = fragment.fid
        verts = plan.verts(fid)
        assert verts.tolist() == list(fragment.vertices())
        slots = plan.slot_of(fid)
        for slot, v in enumerate(verts.tolist()):
            assert slots[v] == slot
        roles = plan.roles(fid)
        for slot, v in enumerate(verts.tolist()):
            assert _ROLE_OF[int(roles[slot])] == partition.role(v, fid).value
        assert plan.edge_list(fid) == list(fragment.edges())


@given(partition_cases())
@SETTINGS
def test_plan_routing_tables_match_partition(partition):
    _check_routing_tables(get_plan(partition), partition)


@given(partition_cases(), st.data())
@SETTINGS
def test_plan_invalidates_and_rebuilds_after_mutations(partition, data):
    plan = get_plan(partition)
    _check_routing_tables(plan, partition)

    n = partition.graph.num_vertices
    k = partition.num_fragments
    mutated = False
    for _ in range(data.draw(st.integers(1, 4))):
        v = data.draw(st.integers(0, n - 1))
        hosts = sorted(partition.placement(v))
        kind = data.draw(st.sampled_from(["add", "master", "remove"]))
        if kind == "add":
            fid = data.draw(st.integers(0, k - 1))
            mutated |= partition.add_vertex_to(fid, v)
        elif kind == "master" and hosts:
            target = data.draw(st.sampled_from(hosts))
            mutated |= partition.master(v) != target
            partition.set_master(v, target)
        elif kind == "remove" and len(hosts) > 1:
            doomed = data.draw(st.sampled_from(hosts))
            # Only edge-free, non-master copies may be dropped.
            if (
                doomed != partition.master(v)
                and partition.fragments[doomed].incident_count(v) == 0
            ):
                partition.remove_vertex_from(doomed, v)
                mutated = True

    if mutated:
        assert not plan.valid, "mutation did not invalidate the cached plan"
    before = plan_stats().snapshot()
    rebuilt = get_plan(partition)
    if mutated:
        # A stale plan is brought current one of three ways: a net-empty
        # journal revalidates the same object, a small dirty region is
        # delta-patched into a fresh plan, and anything else recompiles
        # from scratch.
        after = plan_stats().snapshot()
        assert sum(after) == sum(before) + 1
        if after[2] > before[2]:  # revalidated: same object, still current
            assert rebuilt is plan
        else:  # patched or recompiled: a new plan replaces the stale one
            assert rebuilt is not plan
        assert rebuilt.valid
    _check_routing_tables(rebuilt, partition)
    # The rebuilt plan is cached until the next mutation.
    assert get_plan(partition) is rebuilt
