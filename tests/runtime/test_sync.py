"""Tests for master/mirror synchronization."""

import pytest

from repro.graph.digraph import Graph
from repro.partition.hybrid import HybridPartition
from repro.runtime.bsp import Cluster
from repro.runtime.sync import sync_by_master


@pytest.fixture()
def split_cluster():
    # Vertex 1 split across both fragments; masters at lowest fragment.
    g = Graph(3, [(0, 1), (1, 2)])
    p = HybridPartition.from_edge_assignment(g, {(0, 1): 0, (1, 2): 1}, 2)
    return p, Cluster(p)


def test_combined_value_reaches_all_copies(split_cluster):
    p, cluster = split_cluster
    partials = {0: {1: 5.0}, 1: {1: 7.0}}
    out = sync_by_master(cluster, partials, combine=lambda a, b: a + b)
    assert out[0][1] == pytest.approx(12.0)
    assert out[1][1] == pytest.approx(12.0)


def test_finalize_applied_once(split_cluster):
    _p, cluster = split_cluster
    partials = {0: {1: 5.0}, 1: {1: 7.0}}
    out = sync_by_master(
        cluster, partials, combine=lambda a, b: a + b,
        finalize=lambda v, total: total * 10,
    )
    assert out[0][1] == pytest.approx(120.0)


def test_single_copy_vertex_synced_locally(split_cluster):
    p, cluster = split_cluster
    master = p.master(0)
    out = sync_by_master(cluster, {master: {0: 3.0}}, combine=min)
    assert out[master][0] == 3.0


def test_min_combiner(split_cluster):
    _p, cluster = split_cluster
    out = sync_by_master(cluster, {0: {1: 9}, 1: {1: 4}}, combine=min)
    assert out[0][1] == 4


def test_comm_attributed_to_border_masters(split_cluster):
    p, cluster = split_cluster
    sync_by_master(cluster, {0: {1: 1.0}, 1: {1: 2.0}}, combine=max)
    assert cluster.profile.comm_bytes_by_master.get(1, 0) > 0
    # Vertex 0 is not replicated: no master traffic recorded.
    assert 0 not in cluster.profile.comm_bytes_by_master


def test_custom_value_bytes_estimator(split_cluster):
    p, cluster = split_cluster
    sync_by_master(
        cluster,
        {0: {1: [1, 2, 3]}, 1: {1: [4]}},
        combine=lambda a, b: a + b,
        value_bytes=lambda values: 8.0 * len(values),
    )
    # Mirror -> master shipping charged with the list-size estimate.
    assert cluster.profile.comm_bytes_by_master[1] >= 8.0


def test_two_supersteps_consumed(split_cluster):
    _p, cluster = split_cluster
    before = cluster.profile.num_supersteps
    sync_by_master(cluster, {0: {1: 1.0}}, combine=max)
    assert cluster.profile.num_supersteps == before + 2


def test_combine_finalize_charged_at_recorded_master():
    # Three copies of vertex 1; master moved OFF the lowest fragment so a
    # "charge wherever the partial landed" bug would hit worker 0.
    g = Graph(4, [(0, 1), (1, 2), (1, 3)])
    p = HybridPartition.from_edge_assignment(
        g, {(0, 1): 0, (1, 2): 1, (1, 3): 2}, 3
    )
    p.set_master(1, 2)
    cluster = Cluster(p)
    sync_by_master(
        cluster,
        {0: {1: 1.0}, 1: {1: 2.0}, 2: {1: 4.0}},
        combine=lambda a, b: a + b,
        finalize=lambda _v, total: total + 1.0,
    )
    ops = cluster.profile.comp_ops_by_worker
    # Two combine calls + one finalize, all at the recorded master.
    assert ops == {2: 3.0}


def test_array_sync_bit_identical_to_scalar_with_moved_master():
    import numpy as np

    from repro.runtime.plan import get_plan
    from repro.runtime.sync import sync_by_master_arrays

    g = Graph(4, [(0, 1), (1, 2), (1, 3)])

    def build():
        p = HybridPartition.from_edge_assignment(
            g, {(0, 1): 0, (1, 2): 1, (1, 3): 2}, 3
        )
        p.set_master(1, 2)
        return p

    p_scalar = build()
    c_scalar = Cluster(p_scalar)
    out_scalar = sync_by_master(
        c_scalar,
        {0: {1: 1.0}, 1: {1: 2.0}, 2: {1: 4.0}},
        combine=lambda a, b: a + b,
        finalize=lambda _v, total: total + 1.0,
    )

    p_arrays = build()
    c_arrays = Cluster(p_arrays)
    out_arrays = sync_by_master_arrays(
        c_arrays,
        get_plan(p_arrays),
        {
            0: (np.array([1]), np.array([1.0])),
            1: (np.array([1]), np.array([2.0])),
            2: (np.array([1]), np.array([4.0])),
        },
        reduce="sum",
        finalize=lambda _ids, acc: acc + 1.0,
    )

    for fid in range(3):
        ids, vals = out_arrays[fid]
        assert dict(zip(ids.tolist(), vals.tolist())) == out_scalar[fid]
    # finish() folds the array path's bulk attribution accumulators.
    assert c_arrays.finish().to_dict() == c_scalar.finish().to_dict()
