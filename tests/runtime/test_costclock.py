"""Tests for the cost clock presets."""

import pytest

from repro.runtime.costclock import CostClock


def test_default_superstep_time():
    clock = CostClock(op_cost=2.0, byte_cost=0.5, superstep_latency=1.0)
    assert clock.superstep_time(10, 4) == pytest.approx(20 + 2 + 1)


def test_zero_work_costs_latency_only():
    clock = CostClock()
    assert clock.superstep_time(0, 0) == pytest.approx(clock.superstep_latency)


def test_multicore_profile_cheaper_communication():
    network = CostClock()
    multicore = CostClock.multicore()
    assert multicore.byte_cost < network.byte_cost / 10
    assert multicore.superstep_latency < network.superstep_latency
    # Computation charge unchanged: same workloads stay comparable.
    assert multicore.op_cost == network.op_cost


def test_frozen():
    clock = CostClock()
    with pytest.raises(Exception):
        clock.op_cost = 5.0
