"""Tests for the cost clock presets."""

import pytest

from repro.runtime.costclock import CostClock


def test_default_superstep_time():
    clock = CostClock(op_cost=2.0, byte_cost=0.5, superstep_latency=1.0)
    assert clock.superstep_time(10, 4) == pytest.approx(20 + 2 + 1)


def test_zero_work_costs_latency_only():
    clock = CostClock()
    assert clock.superstep_time(0, 0) == pytest.approx(clock.superstep_latency)


def test_multicore_profile_cheaper_communication():
    network = CostClock()
    multicore = CostClock.multicore()
    assert multicore.byte_cost < network.byte_cost / 10
    assert multicore.superstep_latency < network.superstep_latency
    # Computation charge unchanged: same workloads stay comparable.
    assert multicore.op_cost == network.op_cost


def test_frozen():
    clock = CostClock()
    with pytest.raises(Exception):
        clock.op_cost = 5.0


class TestMulticoreProfile:
    def test_superstep_time_formula(self):
        clock = CostClock.multicore()
        expected = 1e4 * clock.op_cost + 1e6 * clock.byte_cost + clock.superstep_latency
        assert clock.superstep_time(1e4, 1e6) == pytest.approx(expected)

    def test_computation_dominates_communication(self):
        # Equal op/byte loads: multicore charges compute far above comm.
        clock = CostClock.multicore()
        load = 1e6
        assert load * clock.op_cost > 100 * (load * clock.byte_cost)

    def test_zero_work_superstep_costs_multicore_latency_only(self):
        clock = CostClock.multicore()
        assert clock.superstep_time(0, 0) == pytest.approx(clock.superstep_latency)

    def test_returns_fresh_frozen_instance(self):
        assert CostClock.multicore() == CostClock.multicore()
        assert CostClock.multicore() != CostClock()


class TestZeroWorkSupersteps:
    def test_latency_only_charge_through_cluster(self):
        from repro.graph.digraph import Graph
        from repro.partition.hybrid import HybridPartition
        from repro.runtime.bsp import Cluster

        g = Graph(2, [(0, 1)])
        p = HybridPartition.from_vertex_assignment(g, [0, 1], 2)
        cluster = Cluster(p, clock=CostClock())
        cluster.deliver()  # empty superstep: no charges, no messages
        assert cluster.profile.makespan == pytest.approx(
            cluster.clock.superstep_latency
        )
        record = cluster.profile.supersteps[0]
        assert record.max_ops == 0.0
        assert record.max_bytes == 0.0


class TestInputGuards:
    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_rejects_bad_max_ops(self, bad):
        with pytest.raises(ValueError, match="max_ops"):
            CostClock().superstep_time(bad, 0.0)

    @pytest.mark.parametrize("bad", [-0.5, float("nan")])
    def test_rejects_bad_max_bytes(self, bad):
        with pytest.raises(ValueError, match="max_bytes"):
            CostClock().superstep_time(0.0, bad)

    def test_zero_loads_still_accepted(self):
        assert CostClock().superstep_time(0.0, 0.0) > 0.0
