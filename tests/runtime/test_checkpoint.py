"""Tests for superstep checkpointing."""

import pytest

from repro.runtime.checkpoint import Checkpoint, CheckpointManager


def test_interval_must_be_positive():
    with pytest.raises(ValueError, match="interval"):
        CheckpointManager(0)
    with pytest.raises(ValueError, match="interval"):
        CheckpointManager(-3)


def test_due_every_interval():
    manager = CheckpointManager(3)
    assert [s for s in range(10) if manager.due(s)] == [3, 6, 9]


def test_never_due_at_step_zero():
    assert not CheckpointManager(1).due(0)


def test_take_serializes_snapshot_state():
    state = {0: {1: 0.5, 2: 0.25}}
    manager = CheckpointManager(2, snapshot=lambda: state)
    checkpoint = manager.take(2)
    assert checkpoint.superstep == 2
    assert checkpoint.nbytes == len(checkpoint.blob) > 0
    assert checkpoint.restore() == state
    assert manager.last is checkpoint
    assert manager.checkpoints_taken == 1
    assert manager.total_bytes == checkpoint.nbytes


def test_restore_returns_a_copy_not_an_alias():
    state = {"labels": [1, 2, 3]}
    manager = CheckpointManager(1, snapshot=lambda: state)
    checkpoint = manager.take(1)
    state["labels"].append(4)
    assert checkpoint.restore() == {"labels": [1, 2, 3]}


def test_snapshot_hook_can_be_registered_late():
    manager = CheckpointManager(1)
    assert manager.take(1).restore() is None
    manager.set_snapshot_hook(lambda: "state")
    assert manager.take(2).restore() == "state"


def test_total_bytes_accumulates():
    manager = CheckpointManager(1, snapshot=lambda: list(range(10)))
    first = manager.take(1)
    second = manager.take(2)
    assert manager.checkpoints_taken == 2
    assert manager.total_bytes == first.nbytes + second.nbytes


def test_checkpoint_is_immutable():
    checkpoint = CheckpointManager(1, snapshot=lambda: 1).take(1)
    with pytest.raises(Exception):
        checkpoint.nbytes = 0.0
