"""Smoke tests for every experiment module at reduced scale.

Each experiment must run end-to-end and emit structurally correct data;
the full-scale numbers live in EXPERIMENTS.md and the benchmarks.
"""

import pytest

from repro.eval.experiments import appendix, exp1, exp2, exp3, exp4, exp5, exp6


@pytest.mark.slow
class TestExp1:
    def test_figure9_series_shape(self):
        series = exp1.figure9_series(
            "pr", "livejournal_like", (2,), baselines=["fennel", "grid"]
        )
        assert set(series) == {"fennel", "HFennel", "grid", "HGrid"}
        for points in series.values():
            assert points[0][0] == 2
            assert points[0][1] > 0

    def test_speedups_computed(self):
        series = {
            "fennel": [(2, 10.0)],
            "HFennel": [(2, 5.0)],
        }
        assert exp1.speedups(series) == {"HFennel": 2.0}

    def test_table3_rows(self):
        rows = exp1.table3_rows("livejournal_like", 2)
        labels = [row[0] for row in rows]
        assert "xtrapulp" in labels and "HxtraPuLP" in labels
        assert len(rows[0]) == len(exp1.table3_headers())


@pytest.mark.slow
class TestExp2:
    def test_table4_structure(self):
        data = exp2.table4(
            "livejournal_like", 2, baselines=("grid",), batch=("pr", "wcc")
        )
        assert set(data) == {"grid"}
        assert set(data["grid"]) == {"pr", "wcc", "batch"}
        for cell in data["grid"].values():
            assert set(cell) == {"initial", "parhp", "parmhp"}
        rows = exp2.table4_rows(data)
        assert rows[-1][0] == "BATCH"
        overhead = exp2.composite_overhead(data)
        assert "grid" in overhead


@pytest.mark.slow
class TestExp3:
    def test_figure9k(self):
        data = exp3.figure9k(
            "livejournal_like", "pr", (2,), baselines=("fennel",)
        )
        (label, points), = data.items()
        assert label == "HFennel"
        n, part_s, refine_s, share = points[0]
        assert 0 <= share <= 1


@pytest.mark.slow
class TestExp4:
    def test_figure10b(self):
        data = exp4.figure10b(
            "livejournal_like", 2, baselines=("grid",), batch=("pr", "wcc")
        )
        cell = data["grid"]
        assert cell["composite_ratio"] <= cell["separate_ratio"] + 1e-9
        assert 0.0 <= cell["space_saving"] <= 1.0
        assert exp4.rows(data)


@pytest.mark.slow
class TestExp5:
    def test_figure9l(self):
        data = exp5.figure9l(
            factors=(1,), num_fragments=2, baselines=("fennel",)
        )
        assert "HFennel" in data
        assert exp5.rows(data)
        assert exp5.headers(data)[0] == "size"


@pytest.mark.slow
class TestExp6:
    def test_table5_rows(self):
        rows = exp6.table5(algorithms=("pr",), num_graphs=2)
        assert len(rows) == 1
        row = rows[0].as_row()
        assert row[0] == "PR"
        assert len(row) == len(exp6.HEADERS)
        assert rows[0].h_report.test_msre < 1.0

    def test_gunrock_substitute(self):
        from repro.graph.generators import chung_lu_power_law

        times = exp6.gunrock_substitute_times(chung_lu_power_law(100, 4.0, seed=1))
        assert set(times) == {"tc", "wcc", "sssp", "pr"}


@pytest.mark.slow
class TestAppendix:
    def test_phase_speedups_monotone_keys(self):
        data = appendix.phase_speedups(
            "livejournal_like", "fennel", algorithms=("pr",), num_fragments=2
        )
        assert set(data) == {"pr"}
        assert len(data["pr"]) == 3
        rows = appendix.contribution_rows(data)
        assert rows[0][0] == "PR"
