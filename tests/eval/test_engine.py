"""Evaluation-engine tests: keys, cache, facade, executor, bit-identity.

The heavyweight guarantee — ``run_all --quick`` printing byte-identical
tables for ``--jobs 1``, ``--jobs 4`` and a warm-cache rerun — is
asserted by :func:`test_run_all_quick_tables_bit_identical` on a reduced
experiment subset sharing one cache workspace (the full-sweep version
runs in CI's eval-smoke job).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.costmodel.library import builtin_cost_model
from repro.eval.datasets import load_dataset
from repro.eval.engine import (
    ArtifactCache,
    EvalEngine,
    Planner,
    canonical_json,
    config_digest,
    model_digest,
    use_engine,
)
from repro.eval.engine import keys as engine_keys
from repro.eval.engine.executor import execute

SRC = str(Path(__file__).resolve().parents[2] / "src")


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
def test_canonical_json_is_order_independent():
    a = canonical_json({"b": 1, "a": [1.5, {"y": 2, "x": 3}]})
    b = canonical_json({"a": [1.5, {"x": 3, "y": 2}], "b": 1})
    assert a == b
    assert " " not in a


def test_config_digest_changes_with_any_param():
    base = engine_keys.partition_key("g0", "fennel", 4)
    assert engine_keys.partition_key("g1", "fennel", 4) != base
    assert engine_keys.partition_key("g0", "grid", 4) != base
    assert engine_keys.partition_key("g0", "fennel", 8) != base
    assert engine_keys.partition_key("g0", "fennel", 4, virtual=True) != base


def test_refine_key_depends_on_model_and_kwargs():
    base = engine_keys.refine_key("c0", "pr", "edge", "m0", {})
    assert engine_keys.refine_key("c0", "pr", "edge", "m1", {}) != base
    assert engine_keys.refine_key("c0", "pr", "edge", "m0", {"enable_esplit": False}) != base
    assert engine_keys.refine_key("c1", "pr", "edge", "m0", {}) != base
    assert engine_keys.refine_key("c0", "wcc", "edge", "m0", {}) != base


def test_graph_digest_is_content_addressed():
    g1 = load_dataset("livejournal_like")
    g2 = load_dataset("livejournal_like")
    assert g1.digest() == g2.digest()
    assert g1.digest() != load_dataset("twitter_like").digest()


_KEY_SCRIPT = """
import json, sys
from repro.costmodel.library import builtin_cost_model
from repro.eval.datasets import load_dataset
from repro.eval.engine import config_digest, model_digest
from repro.eval.engine import keys
print(json.dumps({
    "config": config_digest("partition", graph="g", baseline="ne", n=4),
    "partition": keys.partition_key(load_dataset("livejournal_like").digest(), "fennel", 2),
    "refine": keys.refine_key("c", "pr", "edge", model_digest(builtin_cost_model("pr")), {"enable_esplit": True}),
    "memo": keys.memo_key("exp6_table5", {"algorithms": ["pr", "cn"], "num_graphs": 3}),
}))
"""


@pytest.mark.slow
def test_cache_keys_stable_across_processes_and_hash_seeds():
    """Keys are pure content hashes: PYTHONHASHSEED and process identity
    must not leak in (otherwise worker processes would never share cells)."""
    outputs = []
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-c", _KEY_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(json.loads(result.stdout))
    assert outputs[0] == outputs[1] == outputs[2]
    # and the in-process keys agree with the subprocess ones
    assert outputs[0]["config"] == config_digest(
        "partition", graph="g", baseline="ne", n=4
    )
    assert outputs[0]["refine"] == engine_keys.refine_key(
        "c", "pr", "edge", model_digest(builtin_cost_model("pr")),
        {"enable_esplit": True},
    )


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------
def test_artifact_cache_round_trip_and_stats(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    assert cache.stats.hits == 0
    cache.count_miss()
    cache.put(key, {"x": [1, 2.5], "y": "z"})
    assert cache.stats.bytes_written > 0
    assert cache.get(key) == {"x": [1, 2.5], "y": "z"}
    assert key in cache
    # a second cache over the same root reads it from disk
    other = ArtifactCache(tmp_path)
    assert other.get(key) == {"x": [1, 2.5], "y": "z"}
    assert other.stats.bytes_read > 0
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)


def test_artifact_cache_memory_lru_bounded(tmp_path):
    cache = ArtifactCache(tmp_path, memory_entries=2)
    for i in range(4):
        cache.put(f"k{i}" + "0" * 62, {"i": i})
    assert len(cache._memory) == 2
    # evicted entries still load from disk
    assert cache.get("k0" + "0" * 62) == {"i": 0}


def test_cache_stats_delta(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("aa" + "0" * 62, {"v": 1})
    before = cache.stats.snapshot()
    cache.get("aa" + "0" * 62)
    delta = cache.stats.delta(before)
    assert (delta.hits, delta.misses) == (1, 0)
    assert delta.bytes_written == 0


# ----------------------------------------------------------------------
# Engine facade
# ----------------------------------------------------------------------
@pytest.fixture
def small_graph():
    return load_dataset("livejournal_like")


def test_passthrough_engine_has_no_cache_counters(small_graph):
    engine = EvalEngine()
    partition, seconds = engine.initial_partition(small_graph, "fennel", 2)
    assert partition.num_fragments == 2
    assert seconds > 0
    assert engine.stats.hits == engine.stats.misses == 0
    with pytest.raises(ValueError):
        engine.warm(Planner().graph)


@pytest.mark.slow
def test_cached_engine_matches_passthrough_and_replays(tmp_path, small_graph):
    model = builtin_cost_model("pr")
    passthrough = EvalEngine()
    p0, _s = passthrough.initial_partition(small_graph, "fennel", 2)
    r0, prof0 = passthrough.refine_partition(p0, "pr", "edge", model)
    mk0 = passthrough.run_algorithm(r0, "pr", {"iterations": 10})

    cached = EvalEngine(cache=ArtifactCache(tmp_path))
    p1, _s1 = cached.initial_partition(small_graph, "fennel", 2)
    r1, prof1 = cached.refine_partition(p1, "pr", "edge", model)
    mk1 = cached.run_algorithm(r1, "pr", {"iterations": 10})
    assert mk1 == mk0
    assert prof1.total_time == prof0.total_time

    # Warm pass: same objects reload from disk, wall-clock fields replay.
    p2, s2 = cached.initial_partition(small_graph, "fennel", 2)
    r2, prof2 = cached.refine_partition(p2, "pr", "edge", model)
    mk2 = cached.run_algorithm(r2, "pr", {"iterations": 10})
    assert mk2 == mk1
    assert prof2.wall_seconds == prof1.wall_seconds
    delta_misses = cached.stats.misses
    assert delta_misses == 3  # only the cold pass computed


@pytest.mark.slow
def test_cached_composite_matches_passthrough(tmp_path, small_graph):
    models = {name: builtin_cost_model(name) for name in ("pr", "wcc")}
    passthrough = EvalEngine()
    p0, _ = passthrough.initial_partition(small_graph, "grid", 2)
    c0, prof0 = passthrough.composite_refine(p0, "vertex", ("pr", "wcc"), models)

    cached = EvalEngine(cache=ArtifactCache(tmp_path))
    p1, _ = cached.initial_partition(small_graph, "grid", 2)
    c1, prof1 = cached.composite_refine(p1, "vertex", ("pr", "wcc"), models)
    assert prof1.total_time == prof0.total_time
    assert c1.space_saving() == c0.space_saving()
    assert c1.composite_replication_ratio() == c0.composite_replication_ratio()
    mk0 = passthrough.run_algorithm(c0.partition_for("pr"), "pr", {"iterations": 10})
    mk1 = cached.run_algorithm(c1.partition_for("pr"), "pr", {"iterations": 10})
    assert mk1 == mk0


def test_memo_cell_whitelist(tmp_path):
    engine = EvalEngine(cache=ArtifactCache(tmp_path))
    with pytest.raises(KeyError):
        engine.memo("not_a_registered_memo", {})


def test_use_engine_swaps_and_restores(tmp_path):
    from repro.eval.engine import get_engine

    default = get_engine()
    replacement = EvalEngine(cache=ArtifactCache(tmp_path))
    with use_engine(replacement):
        assert get_engine() is replacement
    assert get_engine() is default


# ----------------------------------------------------------------------
# Planner / executor
# ----------------------------------------------------------------------
def _tiny_plan() -> Planner:
    planner = Planner(model_for=builtin_cost_model)
    part = planner.partition("livejournal_like", "fennel", 2)
    refined = planner.refine("livejournal_like", "fennel", 2, "pr", "edge")
    planner.run("livejournal_like", "pr", part, {"iterations": 10})
    planner.run("livejournal_like", "pr", refined, {"iterations": 10})
    return planner


def test_job_graph_dedups_shared_cells():
    planner = _tiny_plan()
    before = len(planner.graph)
    # replanning the same cells must not grow the graph
    planner.refine("livejournal_like", "fennel", 2, "pr", "edge")
    planner.partition("livejournal_like", "fennel", 2)
    assert len(planner.graph) == before


def test_job_graph_rejects_unplanned_deps():
    from repro.eval.engine.jobs import Job, JobGraph

    graph = JobGraph()
    with pytest.raises(ValueError):
        graph.add(Job("j1", "run", {"kind": "run"}, ("missing",)))


@pytest.mark.slow
def test_executor_serial_facade_key_agreement(tmp_path):
    """Cells warmed by the executor must be hits for the facade."""
    planner = _tiny_plan()
    cache = ArtifactCache(tmp_path)
    report = execute(planner.graph, cache, jobs=1)
    assert report.computed == report.total == 4

    engine = EvalEngine(cache=cache)
    graph = load_dataset("livejournal_like")
    before = cache.stats.snapshot()
    partition, _s = engine.initial_partition(graph, "fennel", 2)
    refined, _p = engine.refine_partition(
        partition, "pr", "edge", builtin_cost_model("pr")
    )
    engine.run_algorithm(partition, "pr", {"iterations": 10})
    engine.run_algorithm(refined, "pr", {"iterations": 10})
    delta = cache.stats.delta(before)
    assert delta.misses == 0
    assert delta.hits == 4


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_executor_parallel_matches_serial(tmp_path):
    """Process-pool execution computes identical artifacts (by content)."""
    planner = _tiny_plan()
    serial = execute(planner.graph, ArtifactCache(tmp_path / "serial"), jobs=1)
    cache = ArtifactCache(tmp_path / "parallel")
    parallel = execute(planner.graph, cache, jobs=2)
    assert parallel.computed == parallel.total == serial.total

    def contents(report):
        return {
            jid: {k: v for k, v in meta.items() if k != "seconds"}
            for jid, meta in report.meta.items()
        }

    assert contents(serial) == contents(parallel)
    # a warm replay in the parallel workspace is identical bit-for-bit,
    # measured seconds included
    warm = execute(planner.graph, cache, jobs=2)
    assert warm.meta == parallel.meta
    assert warm.hits == warm.total and warm.computed == 0


# ----------------------------------------------------------------------
# run_all bit-identity (reduced subset; full sweep runs in CI)
# ----------------------------------------------------------------------
def _run_all(workspace: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [
            sys.executable, "-m", "repro.eval.run_all",
            "--quick", "--only", "exp3,exp4",
            "--cache-dir", str(workspace / "cache"), *extra,
        ],
        capture_output=True, text=True, env=env, check=True, cwd=str(workspace),
    )


@pytest.mark.slow
@pytest.mark.timeout(1800)
def test_run_all_quick_tables_bit_identical(tmp_path):
    """--jobs 1 (cold), --jobs 4 (warm) and a warm rerun print identical
    tables; the warm runs hit the cache instead of recomputing."""
    cold = _run_all(tmp_path, "--jobs", "1")
    warm_parallel = _run_all(tmp_path, "--jobs", "4")
    warm_serial = _run_all(tmp_path, "--jobs", "1")
    assert cold.stdout == warm_parallel.stdout == warm_serial.stdout
    assert "Exp-3" in cold.stdout and "Exp-4" in cold.stdout
    assert "0 misses" in warm_parallel.stderr
    assert "0 misses" in warm_serial.stderr
    assert "[warm]" in warm_parallel.stderr


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_run_all_only_rejects_unknown_experiment(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC)
    result = subprocess.run(
        [sys.executable, "-m", "repro.eval.run_all", "--quick", "--only", "exp9",
         "--no-cache"],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
    )
    assert result.returncode == 2
    assert "unknown experiment" in result.stderr


# ----------------------------------------------------------------------
# Incremental maintenance cells (DESIGN §15)
# ----------------------------------------------------------------------
BATCH_TEXT = "+ 0 5\n- 0 1\n+ 3 9"


def test_incremental_key_depends_on_base_batch_and_model():
    base = engine_keys.incremental_key("c0", "pr", "edge", "m0", "b0")
    assert engine_keys.incremental_key("c1", "pr", "edge", "m0", "b0") != base
    assert engine_keys.incremental_key("c0", "pr", "edge", "m0", "b1") != base
    assert engine_keys.incremental_key("c0", "pr", "edge", "m1", "b0") != base
    assert engine_keys.incremental_key("c0", "pr", "vertex", "m0", "b0") != base
    assert engine_keys.incremental_key("c0", "pr", "edge", "m0", "b0") == base


def test_planner_incremental_plans_refine_dep_and_dedups():
    from repro.core.incremental import MutationBatch

    planner = Planner(model_for=builtin_cost_model)
    job = planner.incremental(
        "livejournal_like", "fennel", 2, "pr", "edge", BATCH_TEXT
    )
    # partition + refine dependencies were auto-planned.
    assert len(planner.graph) == 3
    assert len(job.deps) == 1
    # Same batch (whether text or parsed) deduplicates; a different
    # batch is a new cell.
    again = planner.incremental(
        "livejournal_like", "fennel", 2, "pr", "edge",
        MutationBatch.parse(BATCH_TEXT),
    )
    assert again.jid == job.jid
    other = planner.incremental(
        "livejournal_like", "fennel", 2, "pr", "edge", "+ 0 5"
    )
    assert other.jid != job.jid
    assert len(planner.graph) == 4


@pytest.mark.slow
def test_maintain_partition_cached_matches_passthrough(tmp_path, small_graph):
    from repro.graph.digraph import Graph

    model = builtin_cost_model("pr")

    def private_copy():
        g = Graph(
            small_graph.num_vertices,
            list(small_graph.edges()),
            directed=small_graph.directed,
        )
        return g

    present = next(iter(small_graph.edges()))
    missing = next(
        (u, v)
        for u in range(20)
        for v in range(20)
        if u != v and not small_graph.has_edge(u, v)
    )
    batch = f"+ {missing[0]} {missing[1]}\n- {present[0]} {present[1]}"

    passthrough = EvalEngine()
    g0 = private_copy()
    p0, _ = passthrough.initial_partition(g0, "fennel", 2)
    r0, _ = passthrough.refine_partition(p0, "pr", "edge", model)
    m0, prof0 = passthrough.maintain_partition(r0, "pr", "edge", model, batch)
    assert m0 is r0  # in-place fast path
    assert prof0.stats.incremental is not None
    assert passthrough.last_maintenance["dirty"] == prof0.stats.incremental.dirty

    cached = EvalEngine(cache=ArtifactCache(tmp_path))
    p1, _ = cached.initial_partition(small_graph, "fennel", 2)
    r1, _ = cached.refine_partition(p1, "pr", "edge", model)
    m1, prof1 = cached.maintain_partition(r1, "pr", "edge", model, batch)
    # Cached mode computes over private copies: the shared dataset graph
    # and the caller's refined partition stay untouched.
    assert m1 is not r1
    assert small_graph.has_edge(*present) and not small_graph.has_edge(*missing)
    assert m1.graph.has_edge(*missing) and not m1.graph.has_edge(*present)
    # Cached profiles drop refiner stats; the counters ride on the
    # engine's maintenance summary instead.
    assert cached.last_maintenance["dirty"] == passthrough.last_maintenance["dirty"]
    assert (
        cached.last_maintenance["batch"] == passthrough.last_maintenance["batch"]
    )

    # Replay is a pure cache hit and reproduces the same maintained state.
    before = cached.stats.snapshot()
    m2, prof2 = cached.maintain_partition(r1, "pr", "edge", model, batch)
    delta = cached.stats.delta(before)
    assert delta.misses == 0 and delta.hits == 1
    assert prof2.wall_seconds == prof1.wall_seconds
    assert m2.graph == m1.graph
    assert {v: sorted(m2.placement(v)) for v in range(m2.graph.num_vertices)} == {
        v: sorted(m1.placement(v)) for v in range(m1.graph.num_vertices)
    }


@pytest.mark.slow
def test_executor_warms_incremental_cell_for_facade(tmp_path):
    planner = Planner(model_for=builtin_cost_model)
    planner.incremental("livejournal_like", "fennel", 2, "pr", "edge", BATCH_TEXT)
    cache = ArtifactCache(tmp_path)
    report = execute(planner.graph, cache, jobs=1)
    assert report.computed == report.total == 3

    engine = EvalEngine(cache=cache)
    graph = load_dataset("livejournal_like")
    before = cache.stats.snapshot()
    partition, _ = engine.initial_partition(graph, "fennel", 2)
    refined, _ = engine.refine_partition(
        partition, "pr", "edge", builtin_cost_model("pr")
    )
    engine.maintain_partition(
        refined, "pr", "edge", builtin_cost_model("pr"), BATCH_TEXT
    )
    delta = cache.stats.delta(before)
    assert delta.misses == 0
    assert delta.hits == 3
