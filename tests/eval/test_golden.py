"""Golden regression fixtures for the experiment pipelines.

Tiny-config Exp-1 / Exp-2 runs are pinned to JSON fixtures in
``tests/eval/golden/``; any change to partitioners, refiners, the BSP
simulator, or the harness that shifts a reported number now fails
loudly instead of drifting silently.

The runs use the Table 5 builtin cost models instead of the default
simulator-trained ones: training goes through ``numpy.linalg.lstsq``,
whose low-order float bits vary across LAPACK builds, while the builtin
polynomials (and everything downstream of them) are pure-Python
deterministic.  Comparison is at 1e-9 relative tolerance.

Regenerate after an *intentional* behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/eval/test_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.costmodel.library import builtin_cost_model
from repro.eval import harness
from repro.eval.engine import ArtifactCache, EvalEngine, use_engine
from repro.eval.experiments import exp1, exp2, exp3, exp4, hetero

GOLDEN_DIR = Path(__file__).parent / "golden"
REL_TOL = 1e-9

EXP1_CONFIG = dict(
    algorithm="pr",
    dataset="livejournal_like",
    fragment_counts=(2,),
    baselines=["fennel", "grid"],
)
EXP2_CONFIG = dict(
    dataset="livejournal_like",
    num_fragments=2,
    baselines=("grid",),
    batch=("pr", "wcc"),
)
EXP3_CONFIG = dict(
    dataset="livejournal_like",
    algorithm="pr",
    fragment_counts=(2,),
    baselines=("fennel", "grid"),
)
EXP4_CONFIG = dict(
    dataset="livejournal_like",
    num_fragments=2,
    baselines=("grid",),
    batch=("pr", "wcc"),
)
HETERO_CONFIG = dict(
    dataset="livejournal_like",
    num_fragments=2,
    baselines=("fennel", "ne"),
    algorithms=("pr", "wcc"),
)


@pytest.fixture(autouse=True)
def _builtin_models(monkeypatch):
    """Pin the harness to the deterministic Table 5 builtin models."""
    monkeypatch.setattr(harness, "trained_cost_model", builtin_cost_model)


def _compute_exp1():
    series = exp1.figure9_series(**EXP1_CONFIG)
    return {label: [list(point) for point in pts] for label, pts in series.items()}


def _compute_exp2():
    return exp2.table4(**EXP2_CONFIG)


def _assert_close(expected, actual, path=""):
    assert type(expected) is type(actual) or (
        isinstance(expected, (int, float)) and isinstance(actual, (int, float))
    ), f"{path}: type {type(expected).__name__} != {type(actual).__name__}"
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{path}: key mismatch"
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: length mismatch"
        for i, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=REL_TOL), (
            f"{path}: {actual!r} != golden {expected!r}"
        )
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


def _check(name: str, compute):
    path = GOLDEN_DIR / f"{name}.json"
    actual = json.loads(json.dumps(compute()))  # normalize tuples/keys
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(path.read_text())
    _assert_close(expected, actual, path=name)


@pytest.mark.slow
def test_exp1_figure9_matches_golden():
    """Fig. 9 tiny config (PR on livejournal_like, n=2) is pinned."""
    _check("exp1_tiny", _compute_exp1)


@pytest.mark.slow
def test_exp2_table4_matches_golden():
    """Table 4 tiny config (grid baseline, pr+wcc batch) is pinned."""
    _check("exp2_tiny", _compute_exp2)


@pytest.mark.slow
def test_exp3_figure9k_matches_golden(tmp_path):
    """Fig. 9(k) tiny config is pinned under the virtual-walls engine.

    Exp-3 reports wall-clock seconds, which no fixture can pin; a caching
    engine with ``virtual=True`` substitutes the deterministic proxies
    (graph size for partitioners, simulated time for refiners), which
    also exercises the cached partition → refine path end to end.
    """
    engine = EvalEngine(cache=ArtifactCache(tmp_path / "cache"), virtual=True)

    def compute():
        with use_engine(engine):
            return {
                label: [list(point) for point in pts]
                for label, pts in exp3.figure9k(**EXP3_CONFIG).items()
            }

    _check("exp3_tiny", compute)


@pytest.mark.slow
def test_hetero_table_matches_golden():
    """The skewed-cluster table (capacity-aware vs -blind) is pinned.

    Everything reported is simulated time, so the plain passthrough
    engine is deterministic — no virtual-walls engine needed.
    """
    _check("hetero_tiny", lambda: hetero.hetero_table(**HETERO_CONFIG))


@pytest.mark.slow
def test_exp4_figure10b_matches_golden(tmp_path):
    """Fig. 10(b) tiny config is pinned (simulated times + space ratios).

    Runs under a virtual-walls caching engine like Exp-3, additionally
    covering the cached composite-refine path.
    """
    engine = EvalEngine(cache=ArtifactCache(tmp_path / "cache"), virtual=True)

    def compute():
        with use_engine(engine):
            return exp4.figure10b(**EXP4_CONFIG)

    _check("exp4_tiny", compute)
