"""Resilience tests: chaos-injected executor runs and cache self-healing.

The contract points of DESIGN.md §11:

* **Recovery** — worker kills, hung jobs, and corrupt/torn artifacts are
  retried / hedged / quarantined-and-recomputed; a sweep never aborts,
  and repeated failures degrade jobs to in-process execution.
* **Determinism under failure** — a chaos-injected cold run leaves a
  cache from which a clean run replays byte-identical tables (5 seeds).
* **Cache self-healing** — malformed JSON, checksum mismatches, and
  truncated artifacts read as misses (never exceptions), damaged files
  are quarantined to a sidecar directory, and ``verify --repair``
  audits/heals a whole cache root including orphaned temp files.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.costmodel.library import builtin_cost_model
from repro.eval.engine import (
    ArtifactCache,
    EngineChaos,
    MissingArtifactError,
    Planner,
    ResilienceConfig,
    RetryPolicy,
    sabotage_artifact,
    seeded_fraction,
)
from repro.eval.engine.executor import execute
from repro.eval.engine.resilience import ResilienceStats

SRC = str(Path(__file__).resolve().parents[2] / "src")

FAST_RETRY = RetryPolicy(base_delay=0.01, max_delay=0.05)


def _tiny_plan():
    planner = Planner(model_for=builtin_cost_model)
    part = planner.partition("livejournal_like", "fennel", 2)
    refined = planner.refine("livejournal_like", "fennel", 2, "pr", "edge")
    planner.run("livejournal_like", "pr", part, {"iterations": 10})
    planner.run("livejournal_like", "pr", refined, {"iterations": 10})
    planner.run("livejournal_like", "wcc", refined)
    return planner.graph


def _strip_seconds(meta):
    """Deterministic part of an execution meta (partitioner wall-clock
    is re-measured per cold computation)."""
    return {
        jid: {k: v for k, v in entry.items() if k != "seconds"}
        for jid, entry in meta.items()
    }


# ----------------------------------------------------------------------
# Policy primitives
# ----------------------------------------------------------------------
def test_seeded_fraction_is_deterministic_and_uniformish():
    draws = [seeded_fraction(7, "x", i) for i in range(200)]
    assert draws == [seeded_fraction(7, "x", i) for i in range(200)]
    assert all(0.0 <= d < 1.0 for d in draws)
    assert 0.3 < sum(draws) / len(draws) < 0.7
    assert seeded_fraction(8, "x", 0) != seeded_fraction(7, "x", 0)


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
    delays = [policy.delay("k", n) for n in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
    jittered = RetryPolicy(base_delay=0.1, jitter=0.5)
    assert 0.1 <= jittered.delay("k", 1) <= 0.15
    # deterministic: same (seed, key, attempt) -> same delay
    assert jittered.delay("k", 1) == jittered.delay("k", 1)
    assert jittered.delay("other", 1) != jittered.delay("k", 1)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        ResilienceConfig(timeout=0.0)
    with pytest.raises(ValueError):
        ResilienceConfig(degrade_after=0)
    with pytest.raises(ValueError):
        EngineChaos(kill_rate=1.5)
    with pytest.raises(ValueError):
        EngineChaos(hang_seconds=-1.0)


def test_resilience_stats_merge_and_describe():
    a = ResilienceStats(retries=2, quarantined=1, failed_jobs=["j1"])
    b = ResilienceStats(timeouts=3, hedges=1, skipped_jobs=["j2"])
    a.merge(b)
    assert a.retries == 2 and a.timeouts == 3 and a.hedges == 1
    assert a.total_events == 2 + 3 + 1 + 1 + 1  # + failed job
    assert "2 retries" in a.describe()
    assert "1 failed" in a.describe()
    assert a.as_dict()["skipped_jobs"] == ["j2"]
    assert ResilienceStats().total_events == 0


def test_chaos_fates_are_deterministic_and_first_attempt_only():
    chaos = EngineChaos(seed=5, kill_rate=0.5, corrupt_rate=0.5)
    fates = {key: chaos.fates(key, 0) for key in ("a", "b", "c", "d", "e")}
    assert fates == {key: chaos.fates(key, 0) for key in fates}
    assert any(fates.values())  # at 50% something fires over 5 keys
    assert all(chaos.fates(key, 1) == [] for key in fates)
    later = EngineChaos(seed=5, kill_rate=1.0, first_attempt_only=False)
    assert later.fates("a", 3) == ["kill-worker"]
    assert EngineChaos().is_empty
    assert not chaos.is_empty


def test_missing_artifact_error_survives_pickling():
    exc = pickle.loads(pickle.dumps(MissingArtifactError("deadbeef", 2)))
    assert exc.key == "deadbeef"
    assert exc.quarantined == 2
    assert "deadbeef" in str(exc)


def test_downstream_cone():
    from repro.eval.engine.jobs import Job, JobGraph

    graph = JobGraph()
    graph.add(Job("a", "memo", {}))
    graph.add(Job("b", "memo", {}, ("a",)))
    graph.add(Job("c", "memo", {}, ("b",)))
    graph.add(Job("d", "memo", {}))
    assert graph.downstream_cone("a") == ["b", "c"]
    assert graph.downstream_cone("b") == ["c"]
    assert graph.downstream_cone("d") == []


# ----------------------------------------------------------------------
# Cache self-healing
# ----------------------------------------------------------------------
def _put_one(tmp_path, payload=None):
    cache = ArtifactCache(tmp_path)
    key = "ab" + "0" * 62
    cache.put(key, payload or {"kind": "memo", "value": [1, 2, 3]})
    return cache, key


def test_cache_malformed_json_reads_as_miss_and_quarantines(tmp_path):
    cache, key = _put_one(tmp_path)
    with open(cache.path_for(key), "w") as handle:
        handle.write("{ not json")
    cache.forget(key)
    assert cache.get(key) is None  # no exception
    assert cache.stats.quarantined == 1
    assert not os.path.exists(cache.path_for(key))
    assert os.path.exists(os.path.join(str(tmp_path), "quarantine", f"{key}.json"))
    assert "1 quarantined" in cache.stats.describe()


def test_cache_missing_envelope_keys_read_as_miss(tmp_path):
    cache, key = _put_one(tmp_path)
    # valid JSON, but a pre-envelope legacy artifact (raw payload)
    with open(cache.path_for(key), "w") as handle:
        json.dump({"kind": "memo", "value": 1}, handle)
    cache.forget(key)
    assert cache.get(key) is None
    assert cache.stats.quarantined == 1


def test_cache_checksum_mismatch_quarantined(tmp_path):
    cache, key = _put_one(tmp_path)
    sabotage_artifact(cache.path_for(key), mode="corrupt")
    cache.forget(key)
    assert cache.get(key) is None
    assert cache.stats.quarantined == 1


def test_cache_torn_write_quarantined(tmp_path):
    cache, key = _put_one(tmp_path)
    sabotage_artifact(cache.path_for(key), mode="torn")
    cache.forget(key)
    assert cache.get(key) is None
    assert cache.stats.quarantined == 1


def test_cache_restore_heals_from_memory(tmp_path):
    cache, key = _put_one(tmp_path)
    sabotage_artifact(cache.path_for(key), mode="corrupt")
    assert cache.restore(key)  # the put left a validated in-memory copy
    cache.forget(key)
    assert cache.get(key) == {"kind": "memo", "value": [1, 2, 3]}
    assert cache.stats.quarantined == 0


def test_cache_validate_off_skips_checksum(tmp_path):
    cache, key = _put_one(tmp_path)
    trusting = ArtifactCache(tmp_path, validate=False)
    # flip payload bytes but keep the JSON parseable: without validation
    # the (wrong) payload is returned rather than quarantined
    path = cache.path_for(key)
    with open(path) as handle:
        envelope = json.load(handle)
    envelope["payload"]["value"] = [9, 9, 9]
    with open(path, "w") as handle:
        json.dump(envelope, handle)
    assert trusting.get(key) == {"kind": "memo", "value": [9, 9, 9]}
    assert cache.validate and not trusting.validate


def test_cache_verify_audits_and_repairs(tmp_path):
    cache = ArtifactCache(tmp_path)
    keys = [f"{i:02x}" + "1" * 62 for i in range(4)]
    for key in keys:
        cache.put(key, {"kind": "memo", "value": key})
    sabotage_artifact(cache.path_for(keys[0]), mode="corrupt")
    sabotage_artifact(cache.path_for(keys[1]), mode="torn")
    orphan = os.path.join(str(tmp_path), keys[2][:2], ".tmp-orphan.json")
    with open(orphan, "w") as handle:
        handle.write("partial")

    audit = cache.verify()  # read-only
    assert audit.scanned == 4 and audit.ok == 2
    assert sorted(audit.corrupt) == sorted(keys[:2])
    assert audit.orphan_tmp == [orphan]
    assert audit.quarantined == 0 and audit.removed_tmp == 0
    assert not audit.healthy
    assert os.path.exists(orphan)

    repaired = cache.verify(repair=True)
    assert repaired.quarantined == 2 and repaired.removed_tmp == 1
    assert not os.path.exists(orphan)
    assert cache.verify().healthy
    assert {
        name
        for name in os.listdir(os.path.join(str(tmp_path), "quarantine"))
    } == {f"{key}.json" for key in keys[:2]}


def test_cache_verify_cli(tmp_path):
    from repro.cli import main

    cache = ArtifactCache(tmp_path / "cache")
    cache.put("ab" + "2" * 62, {"kind": "memo", "value": 1})
    assert main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")]) == 0
    sabotage_artifact(cache.path_for("ab" + "2" * 62), mode="corrupt")
    assert main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")]) == 1
    assert (
        main(["cache", "verify", "--repair", "--cache-dir", str(tmp_path / "cache")])
        == 0
    )
    assert main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")]) == 0
    assert main(["cache", "verify", "--cache-dir", str(tmp_path / "nope")]) == 2


# ----------------------------------------------------------------------
# Executor failure paths (real cells, small graph)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(600)
def test_pool_survives_worker_kills(tmp_path):
    graph = _tiny_plan()
    chaos = EngineChaos(seed=2, kill_rate=0.5)
    policy = ResilienceConfig(retry=FAST_RETRY)
    report = execute(graph, ArtifactCache(tmp_path), jobs=2, resilience=policy, chaos=chaos)
    assert len(report.meta) == report.total == len(graph)
    assert report.resilience.worker_crashes > 0
    assert not report.resilience.failed_jobs


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_pool_times_out_and_hedges_hung_jobs(tmp_path):
    graph = _tiny_plan()
    chaos = EngineChaos(seed=0, hang_rate=0.9, hang_seconds=2.0)
    policy = ResilienceConfig(retry=FAST_RETRY, timeout=0.6)
    report = execute(graph, ArtifactCache(tmp_path), jobs=2, resilience=policy, chaos=chaos)
    assert len(report.meta) == report.total
    assert report.resilience.timeouts > 0
    assert report.resilience.hedges > 0


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_pool_degrades_poisoned_jobs_to_in_process(tmp_path):
    # Every pool attempt hangs (not just the first): the scheduler must
    # fall back to computing in-process, where chaos cannot fire.
    graph = _tiny_plan()
    chaos = EngineChaos(
        seed=0, hang_rate=1.0, hang_seconds=3.0, first_attempt_only=False
    )
    policy = ResilienceConfig(retry=FAST_RETRY, timeout=0.4, hedge=False)
    report = execute(graph, ArtifactCache(tmp_path), jobs=2, resilience=policy, chaos=chaos)
    assert len(report.meta) == report.total
    assert report.resilience.degraded > 0
    assert report.resilience.timeouts > 0
    assert not report.resilience.failed_jobs


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_pool_replans_corrupted_dependencies(tmp_path):
    # Every first-attempt artifact is corrupted after store: dependents
    # find their inputs damaged, quarantine them, and the scheduler
    # re-plans just the dependency's cone until the DAG converges.
    graph = _tiny_plan()
    chaos = EngineChaos(seed=1, corrupt_rate=1.0)
    policy = ResilienceConfig(retry=FAST_RETRY)
    cache = ArtifactCache(tmp_path)
    report = execute(graph, cache, jobs=2, resilience=policy, chaos=chaos)
    assert len(report.meta) == report.total
    assert report.resilience.quarantined > 0
    # the cache heals fully under verify --repair (leaf artifacts are
    # damaged but unread during the warm phase)
    cache.verify(repair=True)
    assert cache.verify().healthy


@pytest.mark.slow
@pytest.mark.timeout(900)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_chaos_cold_run_then_clean_run_is_identical(tmp_path, seed):
    """5 seeds: a chaos-injected cold run leaves a cache from which a
    clean serial run replays every cell without recomputing — the
    byte-identical-tables guarantee at the engine level."""
    graph = _tiny_plan()
    chaos = EngineChaos(
        seed=seed, kill_rate=0.2, hang_rate=0.1, corrupt_rate=0.3,
        torn_rate=0.2, hang_seconds=1.0,
    )
    policy = ResilienceConfig(retry=FAST_RETRY, timeout=20.0)
    cache = ArtifactCache(tmp_path)
    chaotic = execute(graph, cache, jobs=2, resilience=policy, chaos=chaos)
    assert len(chaotic.meta) == chaotic.total
    # clean warm run in the same cache: replays artifacts (any damaged
    # leaf is healed on read), identical metas, zero failure events
    clean = execute(graph, cache, jobs=1)
    assert clean.meta == chaotic.meta
    assert clean.computed == 0 or clean.computed <= clean.total
    assert _strip_seconds(clean.meta) == _strip_seconds(chaotic.meta)


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_serial_chaos_run_converges(tmp_path):
    graph = _tiny_plan()
    chaos = EngineChaos(seed=9, corrupt_rate=0.5, torn_rate=0.5)
    report = execute(
        graph,
        ArtifactCache(tmp_path),
        jobs=1,
        resilience=ResilienceConfig(retry=FAST_RETRY),
        chaos=chaos,
    )
    assert len(report.meta) == report.total


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_failed_job_skips_only_its_downstream_cone(tmp_path, monkeypatch):
    """A job whose cell raises on every attempt (worker and in-process)
    fails permanently; only its dependents are skipped."""
    graph = _tiny_plan()
    from repro.eval.engine import executor as executor_mod

    real_compute = executor_mod.compute_cell

    def poisoned(spec, dep_payload, virtual):
        if spec["kind"] == "refine":
            raise RuntimeError("injected permanent cell failure")
        return real_compute(spec, dep_payload, virtual)

    monkeypatch.setattr(executor_mod, "compute_cell", poisoned)
    report = execute(
        graph,
        ArtifactCache(tmp_path),
        jobs=1,
        resilience=ResilienceConfig(retry=FAST_RETRY),
    )
    refine_jobs = [job.jid for job in graph if job.kind == "refine"]
    run_on_refined = [
        job.jid for job in graph if job.kind == "run" and job.deps[0] in refine_jobs
    ]
    assert report.resilience.failed_jobs == refine_jobs
    assert sorted(report.resilience.skipped_jobs) == sorted(run_on_refined)
    # everything outside the cone completed
    assert len(report.meta) == report.total - len(refine_jobs) - len(run_on_refined)
    assert report.resilience.cell_errors >= FAST_RETRY.max_attempts


# ----------------------------------------------------------------------
# run_all end to end: chaos sweep, byte-identical stdout
# ----------------------------------------------------------------------
def _run_all(workspace: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [
            sys.executable, "-m", "repro.eval.run_all",
            "--quick", "--only", "exp3",
            "--cache-dir", str(workspace / "cache"), *extra,
        ],
        capture_output=True, text=True, env=env, check=True, cwd=str(workspace),
    )


@pytest.mark.slow
@pytest.mark.timeout(1800)
def test_run_all_chaos_sweep_tables_bit_identical(tmp_path):
    """The acceptance criterion: a --jobs 4 sweep with seeded chaos
    (kills + corruption + hangs) completes, reports its recoveries on
    stderr, and prints tables byte-identical to a clean serial run."""
    chaotic = _run_all(
        tmp_path,
        "--jobs", "4",
        "--job-timeout", "120",
        "--chaos-seed", "11",
        "--chaos-kill", "0.15",
        "--chaos-corrupt", "0.2",
        "--chaos-hang", "0.1",
        "--chaos-hang-seconds", "1.0",
    )
    clean = _run_all(tmp_path)
    assert chaotic.stdout == clean.stdout
    assert "Exp-3" in clean.stdout
    assert "[resilience]" in chaotic.stderr
    assert "[warm]" in chaotic.stderr
    assert "[resilience]" not in clean.stderr
