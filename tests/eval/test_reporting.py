"""Tests for the table/series renderers."""

from repro.eval.reporting import format_table, markdown_table, series_block


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "long-name" in lines[3]


def test_float_formatting():
    text = format_table(["x"], [[0.000123456], [1234567.0], [1.5]])
    assert "0.000123" in text
    assert "1.23e+06" in text
    assert "1.5" in text


def test_markdown_table_shape():
    text = markdown_table(["a", "b"], [[1, 2]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"


def test_series_block_merges_x_values():
    series = {"s1": [(1, 10.0), (2, 20.0)], "s2": [(2, 5.0)]}
    text = series_block("title", "n", series)
    assert "title" in text
    assert "s1" in text and "s2" in text
    lines = text.splitlines()
    assert len(lines) == 1 + 2 + 2  # title + header rows + two x rows
