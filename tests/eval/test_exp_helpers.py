"""Fast tests for the experiment modules' pure helper functions.

The expensive end-to-end paths are covered by the slow smoke tests and
the benchmarks; these check the data-shaping helpers with synthetic
inputs.
"""

from repro.eval.experiments import appendix, exp1, exp2, exp3, exp4, exp5


class TestExp1Helpers:
    def test_speedups_ignores_missing_series(self):
        series = {"fennel": [(4, 10.0)]}  # HFennel absent
        assert exp1.speedups(series) == {}

    def test_speedups_averages_over_n(self):
        series = {
            "fennel": [(2, 10.0), (4, 20.0)],
            "HFennel": [(2, 5.0), (4, 5.0)],
        }
        assert exp1.speedups(series)["HFennel"] == 3.0  # (2 + 4) / 2

    def test_speedups_skips_unmatched_points(self):
        series = {"grid": [(2, 8.0)], "HGrid": [(2, 4.0), (8, 1.0)]}
        assert exp1.speedups(series)["HGrid"] == 2.0

    def test_table3_headers_shape(self):
        assert exp1.table3_headers()[0] == "partitioner"
        assert len(exp1.table3_headers()) == 6


class TestExp2Helpers:
    DATA = {
        "grid": {
            "pr": {"initial": 0.010, "parhp": 0.004, "parmhp": 0.005},
            "batch": {"initial": 0.010, "parhp": 0.004, "parmhp": 0.005},
        }
    }

    def test_table4_rows_order_and_speedup(self):
        rows = exp2.table4_rows(self.DATA)
        assert rows[0][0] == "PR"
        assert rows[-1][0] == "BATCH"
        assert rows[0][3] == 2.0  # initial / parmhp

    def test_table4_headers(self):
        headers = exp2.table4_headers(["grid"])
        assert headers == ["app", "Mgrid (ms)", "grid (ms)", "X"]

    def test_composite_overhead(self):
        overhead = exp2.composite_overhead(self.DATA)
        assert overhead["grid"] == (0.005 - 0.004) / 0.004


class TestExp3Exp5Helpers:
    def test_exp3_rows_flatten(self):
        data = {"HFennel": [(2, 1.0, 0.5, 1 / 3)]}
        rows = exp3.rows(data)
        assert rows == [["HFennel", 2, 1.0, 0.5, "33.3%"]]

    def test_exp5_rows_align_by_factor(self):
        data = {"A": [(1, 0.5), (2, 1.0)], "B": [(2, 3.0)]}
        rows = exp5.rows(data)
        assert rows[0][0] == "1|G|"
        assert rows[1][1:] == [1.0, 3.0]
        assert exp5.headers(data) == ["size", "A (s)", "B (s)"]


class TestAppendixHelpers:
    def test_contribution_rows_shares_sum_to_one(self):
        data = {"cn": [2.0, 3.0, 4.0]}
        rows = appendix.contribution_rows(data)
        row = rows[0]
        assert row[0] == "CN"
        shares = [float(s.rstrip("%")) for s in row[4:7]]
        assert abs(sum(shares) - 100.0) <= 2.0  # integer-percent rounding
        assert row[-1] == 3.0  # total gain = 4x - 1

    def test_contribution_rows_negative_marginals_clamped(self):
        data = {"pr": [3.0, 2.0, 2.5]}  # phase 2 regresses
        rows = appendix.contribution_rows(data)
        shares = [float(s.rstrip("%")) for s in rows[0][4:7]]
        assert shares[1] == 0.0  # clamped, not negative

    def test_flat_speedups_do_not_divide_by_zero(self):
        data = {"sssp": [1.0, 1.0, 1.0]}
        rows = appendix.contribution_rows(data)
        assert rows[0][-1] == 0.0


class TestExp4Rows:
    def test_rows_format(self):
        data = {
            "ne": {
                "parhp_s": 0.05,
                "parmhp_s": 0.01,
                "time_saving": 0.8,
                "initial_ratio": 1.5,
                "separate_ratio": 7.0,
                "composite_ratio": 4.5,
                "space_saving": 0.35,
                "extra_over_initial": 2.0,
            }
        }
        rows = exp4.rows(data)
        assert rows[0][0] == "ne"
        assert rows[0][3] == "80%"
        assert rows[0][6] == "35%"
