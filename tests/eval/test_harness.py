"""Tests for the experiment harness plumbing (small settings)."""

import pytest

from repro.eval.harness import (
    BASELINES,
    BATCH,
    algorithm_params,
    composite_refine,
    partition_and_refine,
    refine_for,
    run_algorithm,
)
from repro.graph.generators import chung_lu_power_law
from repro.partition.validation import check_partition
from repro.partitioners.base import get_partitioner


@pytest.fixture(scope="module")
def small_graph():
    return chung_lu_power_law(250, 6.0, seed=71)


def test_roster_matches_paper():
    assert set(BASELINES) == {"xtrapulp", "fennel", "grid", "ne", "ginger", "topox"}
    assert BATCH == ("cn", "tc", "wcc", "pr", "sssp")


def test_algorithm_params():
    assert algorithm_params("cn", "twitter_like")["theta"] == 300
    assert "theta" not in algorithm_params("cn", "livejournal_like")
    assert algorithm_params("pr", "x")["iterations"] == 10


def test_run_algorithm_returns_seconds(small_graph):
    p = get_partitioner("hash").partition(small_graph, 3)
    seconds = run_algorithm(p, "wcc")
    assert seconds > 0


def test_partition_and_refine_edge_baseline(small_graph):
    bundle = partition_and_refine(small_graph, "fennel", "pr", 3)
    assert bundle.refined is not None
    check_partition(bundle.refined)
    assert bundle.partition_seconds > 0
    assert bundle.refine_profile.total_time > 0


def test_partition_and_refine_hybrid_baseline_not_refined(small_graph):
    bundle = partition_and_refine(small_graph, "ginger", "pr", 3)
    assert bundle.refined is None
    assert bundle.refine_profile is None


def test_refine_for_rejects_hybrid_cut(small_graph):
    p = get_partitioner("ginger").partition(small_graph, 3)
    with pytest.raises(ValueError):
        refine_for(p, "pr", "hybrid")


def test_composite_refine_small_batch(small_graph):
    composite, profile, base_seconds = composite_refine(
        small_graph, "grid", 3, batch=("pr", "wcc")
    )
    assert base_seconds > 0
    assert profile.total_time > 0
    for name in ("pr", "wcc"):
        check_partition(composite.partition_for(name))
