"""Tests for the dataset registry."""

import pytest

from repro.eval.datasets import CN_THETA, DATASETS, load_dataset
from repro.graph.metrics import degree_skew


def test_all_registered_datasets_build():
    for name in ("livejournal_like", "twitter_like", "ukweb_like", "traffic_like"):
        graph = load_dataset(name)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0


def test_cached_instances_are_shared():
    assert load_dataset("twitter_like") is load_dataset("twitter_like")


def test_unknown_dataset_rejected():
    with pytest.raises(KeyError):
        load_dataset("facebook")


def test_twitter_like_is_most_skewed():
    twitter = load_dataset("twitter_like")
    traffic = load_dataset("traffic_like")
    assert degree_skew(twitter, 0.01) > degree_skew(traffic, 0.01)


def test_traffic_like_is_undirected_planarish():
    traffic = load_dataset("traffic_like")
    assert not traffic.directed
    degrees = [traffic.degree(v) for v in traffic.vertices]
    assert max(degrees) <= 8  # lattice + diagonals only


def test_scale_series_grows():
    sizes = [load_dataset(f"scale_{k}").num_edges for k in (1, 2, 3)]
    assert sizes[0] < sizes[1] < sizes[2]


def test_theta_configured_for_twitter():
    assert CN_THETA["twitter_like"] == 300
    assert CN_THETA["livejournal_like"] is None
